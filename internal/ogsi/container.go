package ogsi

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"neesgrid/internal/gsi"
	"neesgrid/internal/telemetry"
	"neesgrid/internal/trace"
)

// Caller identifies the authenticated, authorized origin of a request.
type Caller struct {
	// Identity is the Grid identity (base subject of the credential chain).
	Identity string
	// Account is the site-local account the gridmap assigned.
	Account string
}

// Handler implements one operation of a grid service.
type Handler func(ctx context.Context, caller Caller, params json.RawMessage) (any, error)

// OpError is a structured service fault with a machine-readable code, so
// clients can distinguish, e.g., a policy rejection from a missing
// transaction.
type OpError struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

func (e *OpError) Error() string { return fmt.Sprintf("%s: %s", e.Code, e.Message) }

// Errf builds an OpError.
func Errf(code, format string, args ...any) *OpError {
	return &OpError{Code: code, Message: fmt.Sprintf(format, args...)}
}

// Standard fault codes.
const (
	CodeNotFound     = "not-found"
	CodeDenied       = "denied"
	CodeBadRequest   = "bad-request"
	CodeConflict     = "conflict"
	CodeInternal     = "internal"
	CodeUnavailable  = "unavailable"
	CodePolicyReject = "policy-reject"
)

// Service is one stateful grid service: a set of named operations plus its
// service data elements and soft-state resources.
type Service struct {
	name      string
	mu        sync.RWMutex
	ops       map[string]Handler
	SDEs      *SDEStore
	Lifetimes *LifetimeManager
}

// NewService creates an empty service.
func NewService(name string) *Service {
	return &Service{
		name:      name,
		ops:       make(map[string]Handler),
		SDEs:      NewSDEStore(),
		Lifetimes: NewLifetimeManager(),
	}
}

// Name returns the service name.
func (s *Service) Name() string { return s.name }

// RegisterOp adds an operation; registering a duplicate name panics (a
// programming error caught at wiring time).
func (s *Service) RegisterOp(op string, h Handler) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.ops[op]; dup {
		panic(fmt.Sprintf("ogsi: duplicate op %s.%s", s.name, op))
	}
	s.ops[op] = h
}

func (s *Service) handler(op string) (Handler, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	h, ok := s.ops[op]
	return h, ok
}

// request is the wire form of a service call (carried inside a signed
// envelope). Trace is the caller's W3C traceparent: carrying it inside
// the signed payload (rather than an HTTP header) means the trace lineage
// is covered by the envelope signature like everything else.
type request struct {
	Service string          `json:"service"`
	Op      string          `json:"op"`
	Params  json.RawMessage `json:"params"`
	Sent    time.Time       `json:"sent"`
	Trace   string          `json:"trace,omitempty"`
}

// response is the wire form of a service reply. Trace echoes the server
// span's traceparent so the client can link its span to the server's.
type response struct {
	OK     bool            `json:"ok"`
	Code   string          `json:"code,omitempty"`
	Error  string          `json:"error,omitempty"`
	Result json.RawMessage `json:"result,omitempty"`
	Trace  string          `json:"trace,omitempty"`
}

// inspectParams is the FindServiceData request body.
type inspectParams struct {
	Names []string `json:"names"`
}

// terminationParams is the RequestTermination request body.
type terminationParams struct {
	ID         string  `json:"id"`
	TTLSeconds float64 `json:"ttl_seconds"`
}

// waitParams is the long-poll notification request body.
type waitParams struct {
	Name           string  `json:"name"`
	SinceVersion   int     `json:"since_version"`
	TimeoutSeconds float64 `json:"timeout_seconds"`
}

// batchItem is one operation of a batched call: the op name plus its
// already-encoded params. The client encodes these with
// appendBatchItemsJSON; the wire forms must stay in sync.
type batchItem struct {
	Op     string          `json:"op"`
	Params json.RawMessage `json:"params"`
}

// maxBatchOps bounds one batch. The coordinator fuses two ops per step;
// the bound exists so a malformed client cannot turn one signed envelope
// into unbounded server work.
const maxBatchOps = 16

// Container hosts services behind a GSI-secured HTTP endpoint. It is the
// process-level unit the paper calls an "NTCP server" host: one container
// per site, hosting that site's services.
type Container struct {
	cred    *gsi.Credential
	trust   *gsi.TrustStore
	gridmap *gsi.Gridmap
	clock   func() time.Time

	mu       sync.RWMutex
	services map[string]*Service
	tel      *telemetry.Registry
	tracer   *trace.Tracer

	httpServer *http.Server
	listener   net.Listener
	stopReaper chan struct{}
	reaperOnce sync.Once

	// lifecycle state for health probes: 0 new, 1 serving, 2 draining,
	// 3 stopped. Stop flips to draining before http.Server.Shutdown so a
	// readiness aggregator deregisters the endpoint ahead of the listener
	// closing.
	state atomic.Int32
}

const (
	contNew = int32(iota)
	contServing
	contDraining
	contStopped
)

// NewContainer creates a container with the given server credential, trust
// store, and gridmap. It records per-service/per-op request counts, fault
// codes, and latency histograms into a telemetry registry (its own by
// default; share one via UseTelemetry) and serves the registry snapshot at
// the /metrics HTTP endpoint and as a computed "metrics" SDE on every
// hosted service.
func NewContainer(cred *gsi.Credential, trust *gsi.TrustStore, gridmap *gsi.Gridmap) *Container {
	return &Container{
		cred:     cred,
		trust:    trust,
		gridmap:  gridmap,
		clock:    time.Now,
		services: make(map[string]*Service),
		tel:      telemetry.NewRegistry(),
	}
}

// UseTelemetry replaces the container's registry — the way a site shares one
// registry between its container and the services it hosts (so /metrics
// shows transport and service metrics together). Call before traffic flows.
func (c *Container) UseTelemetry(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.tel = reg
}

// Telemetry returns the container's metrics registry.
func (c *Container) Telemetry() *telemetry.Registry {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.tel
}

// UseTracer enables distributed tracing: every authenticated request gets
// a server span (parented under the caller's traceparent when the signed
// payload carries one), and the tracer's recorder is served at GET /trace.
// Call before traffic flows; nil disables tracing.
func (c *Container) UseTracer(t *trace.Tracer) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.tracer = t
}

// Tracer returns the container's tracer (nil when tracing is off).
func (c *Container) Tracer() *trace.Tracer {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.tracer
}

// metricsSnapshot captures the registry after mirroring the trust store's
// verified-chain cache totals into it, so /metrics and the computed
// "metrics" SDE expose the security hot-path hit rate alongside the
// per-op counters. Gauges (not counters) because the trust store may be
// shared between containers and the totals are store-wide. Process
// self-metrics refresh here too, so container-hosted daemons export the
// process.* gauges the obs aggregator's health view reads.
func (c *Container) metricsSnapshot() telemetry.Snapshot {
	tel := c.Telemetry()
	if c.trust != nil {
		hits, misses := c.trust.CacheStats()
		tel.Gauge("gsi.chaincache.hits").Set(float64(hits))
		tel.Gauge("gsi.chaincache.misses").Set(float64(misses))
	}
	telemetry.ProcessMetrics(tel)
	return tel.Snapshot()
}

// AddService registers a service; duplicate names panic. The service gains a
// computed "metrics" SDE exposing the container's telemetry snapshot, so
// remote clients can inspect metrics through plain FindServiceData.
func (c *Container) AddService(s *Service) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, dup := c.services[s.Name()]; dup {
		panic(fmt.Sprintf("ogsi: duplicate service %s", s.Name()))
	}
	c.services[s.Name()] = s
	s.SDEs.SetComputed("metrics", func() any { return c.metricsSnapshot() })
}

// ReplaceService atomically swaps in a service under a name that is already
// registered, returning the displaced service. In-flight requests against
// the old service finish against it; subsequent dispatches see the new one.
// This is the hook a site-daemon restart uses: a fresh NTCP server (empty
// transaction table) takes over the same service name without tearing down
// the container's listener or TLS state.
func (c *Container) ReplaceService(s *Service) (*Service, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	old, ok := c.services[s.Name()]
	if !ok {
		return nil, fmt.Errorf("ogsi: no service %s to replace", s.Name())
	}
	c.services[s.Name()] = s
	s.SDEs.SetComputed("metrics", func() any { return c.metricsSnapshot() })
	return old, nil
}

// Service returns a hosted service by name.
func (c *Container) Service(name string) (*Service, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	s, ok := c.services[name]
	return s, ok
}

// Identity returns the container's own Grid identity.
func (c *Container) Identity() string { return c.cred.Identity() }

// dispatch runs one decoded request, recording per-service/per-op request
// counts, fault codes, and handler latency.
func (c *Container) dispatch(ctx context.Context, caller Caller, req *request) *response {
	tel := c.Telemetry()
	prefix := "ogsi." + req.Service + "." + req.Op
	tel.Counter(prefix + ".requests").Inc()
	start := time.Now()
	resp := c.dispatchInner(ctx, caller, req)
	tel.Histogram(prefix + ".seconds").ObserveDuration(time.Since(start))
	if !resp.OK {
		tel.Counter(prefix + ".faults." + resp.Code).Inc()
		tel.Event("ogsi", "fault", map[string]any{
			"service": req.Service, "op": req.Op, "code": resp.Code, "error": resp.Error,
		})
	}
	return resp
}

func (c *Container) dispatchInner(ctx context.Context, caller Caller, req *request) *response {
	svc, ok := c.Service(req.Service)
	if !ok {
		return faultResponse(Errf(CodeNotFound, "no service %q", req.Service))
	}
	var (
		result any
		err    error
	)
	switch req.Op {
	case "findServiceData":
		var p inspectParams
		if len(req.Params) > 0 {
			if uerr := json.Unmarshal(req.Params, &p); uerr != nil {
				return faultResponse(Errf(CodeBadRequest, "bad inspect params: %v", uerr))
			}
		}
		result = svc.SDEs.Query(p.Names...)
	case "lastChanged":
		sde, ok := svc.SDEs.LastChanged()
		if !ok {
			return faultResponse(Errf(CodeNotFound, "service %q has no changed data", req.Service))
		}
		result = sde
	case "waitServiceData":
		var p waitParams
		if uerr := json.Unmarshal(req.Params, &p); uerr != nil {
			return faultResponse(Errf(CodeBadRequest, "bad wait params: %v", uerr))
		}
		timeout := time.Duration(p.TimeoutSeconds * float64(time.Second))
		if timeout <= 0 || timeout > 30*time.Second {
			timeout = 30 * time.Second
		}
		waitCtx, cancel := context.WithTimeout(ctx, timeout)
		defer cancel()
		sde, werr := svc.SDEs.WaitChange(waitCtx, p.Name, p.SinceVersion)
		if werr != nil {
			// Long-poll timeout: the client re-arms with the same cursor.
			return faultResponse(Errf(CodeUnavailable, "no change on %q past version %d", p.Name, p.SinceVersion))
		}
		result = sde
	case "requestTermination":
		var p terminationParams
		if uerr := json.Unmarshal(req.Params, &p); uerr != nil {
			return faultResponse(Errf(CodeBadRequest, "bad termination params: %v", uerr))
		}
		if !svc.Lifetimes.RequestTermination(p.ID, time.Duration(p.TTLSeconds*float64(time.Second))) {
			return faultResponse(Errf(CodeNotFound, "no resource %q", p.ID))
		}
		result = map[string]bool{"extended": true}
	case "batch":
		return c.runBatch(ctx, caller, req)
	default:
		h, ok := svc.handler(req.Op)
		if !ok {
			return faultResponse(Errf(CodeNotFound, "service %q has no op %q", req.Service, req.Op))
		}
		result, err = h(ctx, caller, req.Params)
	}
	if err != nil {
		return faultResponse(err)
	}
	raw, merr := json.Marshal(result)
	if merr != nil {
		return faultResponse(Errf(CodeInternal, "marshal result: %v", merr))
	}
	return &response{OK: true, Result: raw}
}

// runBatch executes the "batch" built-in: several operations for one
// service carried in a single signed envelope, dispatched strictly in
// order, with one response per item. Each item goes back through dispatch,
// so per-op request counts, fault counters, and latency histograms keep
// working; the batch op itself is metered like any other op by the outer
// dispatch. A per-item fault does not fail the envelope — the caller reads
// it from that item's response. Nested batches are rejected.
func (c *Container) runBatch(ctx context.Context, caller Caller, req *request) *response {
	var items []batchItem
	if err := json.Unmarshal(req.Params, &items); err != nil {
		return faultResponse(Errf(CodeBadRequest, "bad batch params: %v", err))
	}
	if len(items) == 0 {
		return faultResponse(Errf(CodeBadRequest, "empty batch"))
	}
	if len(items) > maxBatchOps {
		return faultResponse(Errf(CodeBadRequest, "batch of %d exceeds %d ops", len(items), maxBatchOps))
	}
	results := make([]*response, len(items))
	for i := range items {
		if items[i].Op == "batch" {
			results[i] = faultResponse(Errf(CodeBadRequest, "nested batch"))
			continue
		}
		sub := &request{
			Service: req.Service,
			Op:      items[i].Op,
			Params:  items[i].Params,
			Sent:    req.Sent,
			Trace:   req.Trace,
		}
		results[i] = c.dispatch(ctx, caller, sub)
	}
	buf := getBuf()
	defer putBuf(buf)
	*buf = appendResponseListJSON((*buf)[:0], results)
	raw := make(json.RawMessage, len(*buf))
	copy(raw, *buf)
	return &response{OK: true, Result: raw}
}

func faultResponse(err error) *response {
	var oe *OpError
	if errors.As(err, &oe) {
		return &response{OK: false, Code: oe.Code, Error: oe.Message}
	}
	return &response{OK: false, Code: CodeInternal, Error: err.Error()}
}

// ServeHTTP handles one signed service call.
func (c *Container) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "ogsi: POST only", http.StatusMethodNotAllowed)
		return
	}
	bodyBuf := getBuf()
	defer putBuf(bodyBuf)
	body, err := readAllInto((*bodyBuf)[:0], io.LimitReader(r.Body, 16<<20))
	*bodyBuf = body
	if err != nil {
		http.Error(w, "ogsi: read body", http.StatusBadRequest)
		return
	}
	// Unmarshal copies every []byte field (base64 decode) and RawMessage, so
	// nothing below aliases the pooled body buffer.
	var env gsi.Envelope
	if err := json.Unmarshal(body, &env); err != nil {
		http.Error(w, "ogsi: bad envelope", http.StatusBadRequest)
		return
	}
	// Chain verification runs before the payload — and thus the caller's
	// traceparent — is readable, so its extent is measured here and
	// recorded as a retroactive child span once the server span exists.
	verifyStart := time.Now()
	payload, identity, vinfo, err := c.trust.OpenInfo(&env, c.clock())
	verifyEnd := time.Now()
	if err != nil {
		c.Telemetry().Counter("ogsi.auth.failed").Inc()
		c.reply(w, faultResponse(Errf(CodeDenied, "authentication failed: %v", err)))
		return
	}
	account, err := c.gridmap.Authorize(identity)
	if err != nil {
		c.Telemetry().Counter("ogsi.auth.denied").Inc()
		c.reply(w, faultResponse(Errf(CodeDenied, "not authorized: %s", identity)))
		return
	}
	var req request
	if err := json.Unmarshal(payload, &req); err != nil {
		c.reply(w, faultResponse(Errf(CodeBadRequest, "bad request: %v", err)))
		return
	}
	ctx := r.Context()
	var span *trace.Span
	if tr := c.Tracer(); tr != nil {
		if sc, perr := trace.ParseTraceparent(req.Trace); perr == nil {
			ctx = trace.ContextWithRemote(ctx, sc)
		}
		ctx, span = tr.Start(ctx, req.Service+"."+req.Op, trace.KindServer)
		span.SetAttr("caller", identity)
		tr.RecordSpan(span.Context(), "gsi.verify", trace.KindInternal,
			verifyStart, verifyEnd, map[string]string{
				"side":   "request",
				"cached": fmt.Sprintf("%t", vinfo.CacheHit),
			})
	}
	resp := c.dispatch(ctx, Caller{Identity: identity, Account: account}, &req)
	if span != nil {
		if !resp.OK {
			span.SetAttr("fault", resp.Code)
		}
		// Echo the server span inside the signed response so the client
		// can pair its span with this one.
		resp.Trace = span.Context().Traceparent()
	}
	c.reply(w, resp)
	span.End()
}

// reply signs and writes a response envelope, encoding response and
// envelope in one pass through pooled buffers.
func (c *Container) reply(w http.ResponseWriter, resp *response) {
	rawBuf := getBuf()
	defer putBuf(rawBuf)
	*rawBuf = appendResponseJSON((*rawBuf)[:0], resp)
	envBuf := getBuf()
	defer putBuf(envBuf)
	env, err := gsi.AppendSignedEnvelope((*envBuf)[:0], c.cred, *rawBuf)
	if err != nil {
		http.Error(w, "ogsi: sign response", http.StatusInternalServerError)
		return
	}
	*envBuf = env
	w.Header().Set("Content-Type", "application/json")
	_, _ = w.Write(env) // connection-level failure; nothing further to do
}

// Start listens on addr (e.g. "127.0.0.1:0") and serves until Stop. It
// returns the bound address. A background reaper sweeps soft-state
// lifetimes every second.
func (c *Container) Start(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("ogsi: listen %s: %w", addr, err)
	}
	c.listener = ln
	mux := http.NewServeMux()
	mux.Handle("/ogsi", c)
	mux.HandleFunc("/metrics", c.serveMetrics)
	mux.HandleFunc("/trace", c.serveTrace)
	c.httpServer = &http.Server{Handler: mux}
	c.stopReaper = make(chan struct{})
	go func() {
		c.mu.RLock()
		services := make([]*Service, 0, len(c.services))
		for _, s := range c.services {
			services = append(services, s)
		}
		c.mu.RUnlock()
		t := time.NewTicker(time.Second)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				for _, s := range services {
					s.Lifetimes.Sweep()
				}
			case <-c.stopReaper:
				return
			}
		}
	}()
	go func() { _ = c.httpServer.Serve(ln) }()
	c.state.Store(contServing)
	return ln.Addr().String(), nil
}

// Addr returns the bound listen address ("" before Start).
func (c *Container) Addr() string {
	if c.listener == nil {
		return ""
	}
	return c.listener.Addr().String()
}

// Healthy reports nil while the container is serving — the per-component
// signal the runtime supervisor aggregates into /healthz.
func (c *Container) Healthy() error {
	switch c.state.Load() {
	case contServing:
		return nil
	case contDraining:
		return fmt.Errorf("ogsi: container draining")
	case contStopped:
		return fmt.Errorf("ogsi: container stopped")
	default:
		return fmt.Errorf("ogsi: container not started")
	}
}

// serveMetrics renders the container's telemetry registry on GET /metrics.
// Unlike /ogsi it is unsigned: metrics are operational data for dashboards
// and the mostctl metrics command, not control traffic. The shared
// telemetry handler speaks indented JSON by default and the Prometheus
// text exposition on Accept: text/plain.
func (c *Container) serveMetrics(w http.ResponseWriter, r *http.Request) {
	telemetry.SnapshotHandler(c.metricsSnapshot).ServeHTTP(w, r)
}

// serveTrace renders the container's recent spans as JSON on GET /trace.
// Unsigned for the same reason as /metrics: spans are operational data
// (names, IDs, durations) for mostctl and dashboards, not control
// traffic. With no tracer wired it serves an empty list.
func (c *Container) serveTrace(w http.ResponseWriter, r *http.Request) {
	tr := c.Tracer()
	if tr == nil {
		if r.Method != http.MethodGet {
			http.Error(w, "ogsi: GET only", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write([]byte("[]\n"))
		return
	}
	trace.Handler(tr.Recorder()).ServeHTTP(w, r)
}

// Stop shuts the container down: it first deregisters from readiness
// (Healthy turns non-nil, so /healthz aggregation and any load balancer
// watching it stop routing here), then lets http.Server.Shutdown finish
// the requests already in flight within ctx's deadline.
func (c *Container) Stop(ctx context.Context) error {
	c.state.CompareAndSwap(contServing, contDraining)
	c.reaperOnce.Do(func() {
		if c.stopReaper != nil {
			close(c.stopReaper)
		}
	})
	var err error
	if c.httpServer != nil {
		err = c.httpServer.Shutdown(ctx)
	}
	c.state.Store(contStopped)
	return err
}
