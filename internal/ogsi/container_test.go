package ogsi

import (
	"context"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"

	"neesgrid/internal/gsi"
)

// testFabric is a CA + container + authorized client wired over a real TCP
// listener.
type testFabric struct {
	ca        *gsi.Authority
	trust     *gsi.TrustStore
	container *Container
	client    *Client
	addr      string
}

func newFabric(t *testing.T, wire func(*Container)) *testFabric {
	t.Helper()
	ca, err := gsi.NewAuthority("/O=NEES/CN=CA", time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	trust := gsi.NewTrustStore(ca.Cert)
	serverCred, err := ca.Issue("/O=NEES/CN=container", time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	clientCred, err := ca.Issue("/O=NEES/CN=alice", time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	gm := gsi.NewGridmap(map[string]string{"/O=NEES/CN=alice": "alice"})
	cont := NewContainer(serverCred, trust, gm)
	if wire != nil {
		wire(cont)
	}
	addr, err := cont.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), time.Second)
		defer cancel()
		_ = cont.Stop(ctx)
	})
	cl := NewClient("http://"+addr, clientCred, trust)
	return &testFabric{ca: ca, trust: trust, container: cont, client: cl, addr: addr}
}

func echoService() *Service {
	svc := NewService("echo")
	svc.RegisterOp("echo", func(_ context.Context, caller Caller, params json.RawMessage) (any, error) {
		var in map[string]string
		if err := json.Unmarshal(params, &in); err != nil {
			return nil, Errf(CodeBadRequest, "bad params: %v", err)
		}
		in["caller"] = caller.Identity
		in["account"] = caller.Account
		return in, nil
	})
	svc.RegisterOp("fail", func(context.Context, Caller, json.RawMessage) (any, error) {
		return nil, Errf(CodePolicyReject, "force limit exceeded")
	})
	return svc
}

func TestCallRoundTrip(t *testing.T) {
	f := newFabric(t, func(c *Container) { c.AddService(echoService()) })
	var out map[string]string
	err := f.client.Call(context.Background(), "echo", "echo", map[string]string{"msg": "hi"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if out["msg"] != "hi" {
		t.Fatalf("echo = %v", out)
	}
	if out["caller"] != "/O=NEES/CN=alice" || out["account"] != "alice" {
		t.Fatalf("caller propagated wrong: %v", out)
	}
}

func TestCallServiceFaultCode(t *testing.T) {
	f := newFabric(t, func(c *Container) { c.AddService(echoService()) })
	err := f.client.Call(context.Background(), "echo", "fail", nil, nil)
	if !IsRemoteCode(err, CodePolicyReject) {
		t.Fatalf("err = %v, want policy-reject", err)
	}
}

func TestCallUnknownServiceAndOp(t *testing.T) {
	f := newFabric(t, func(c *Container) { c.AddService(echoService()) })
	if err := f.client.Call(context.Background(), "nope", "x", nil, nil); !IsRemoteCode(err, CodeNotFound) {
		t.Fatalf("unknown service err = %v", err)
	}
	if err := f.client.Call(context.Background(), "echo", "nope", nil, nil); !IsRemoteCode(err, CodeNotFound) {
		t.Fatalf("unknown op err = %v", err)
	}
}

func TestUnauthorizedIdentityRejected(t *testing.T) {
	f := newFabric(t, func(c *Container) { c.AddService(echoService()) })
	mallory, err := f.ca.Issue("/O=NEES/CN=mallory", time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	cl := NewClient("http://"+f.addr, mallory, f.trust)
	errCall := cl.Call(context.Background(), "echo", "echo", map[string]string{}, nil)
	if !IsRemoteCode(errCall, CodeDenied) {
		t.Fatalf("err = %v, want denied (gridmap rejection)", errCall)
	}
}

func TestUntrustedCredentialRejected(t *testing.T) {
	f := newFabric(t, func(c *Container) { c.AddService(echoService()) })
	rogueCA, _ := gsi.NewAuthority("/O=Rogue/CN=CA", time.Hour)
	rogue, _ := rogueCA.Issue("/O=NEES/CN=alice", time.Hour) // same name, wrong CA
	trust := gsi.NewTrustStore(f.ca.Cert, rogueCA.Cert)      // client trusts both so it can read the reply
	cl := NewClient("http://"+f.addr, rogue, trust)
	err := cl.Call(context.Background(), "echo", "echo", map[string]string{}, nil)
	if !IsRemoteCode(err, CodeDenied) {
		t.Fatalf("err = %v, want denied (untrusted CA)", err)
	}
}

func TestDelegatedProxyAccepted(t *testing.T) {
	f := newFabric(t, func(c *Container) { c.AddService(echoService()) })
	proxy, err := f.client.Cred.Delegate(10 * time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	cl := NewClient("http://"+f.addr, proxy, f.trust)
	var out map[string]string
	if err := cl.Call(context.Background(), "echo", "echo", map[string]string{}, &out); err != nil {
		t.Fatal(err)
	}
	if out["caller"] != "/O=NEES/CN=alice" {
		t.Fatalf("proxy caller = %q", out["caller"])
	}
}

func TestFindServiceDataRemote(t *testing.T) {
	f := newFabric(t, func(c *Container) {
		svc := echoService()
		_ = svc.SDEs.Set("status", "idle")
		_ = svc.SDEs.Set("steps", 42)
		c.AddService(svc)
	})
	sdes, err := f.client.FindServiceData(context.Background(), "echo")
	if err != nil {
		t.Fatal(err)
	}
	// The two stored elements plus the container's computed "metrics" SDE.
	if len(sdes) != 3 {
		t.Fatalf("got %d SDEs", len(sdes))
	}
	names := map[string]bool{}
	for _, sde := range sdes {
		names[sde.Name] = true
	}
	if !names["status"] || !names["steps"] || !names["metrics"] {
		t.Fatalf("SDE names = %v", names)
	}
	one, err := f.client.FindServiceData(context.Background(), "echo", "steps")
	if err != nil {
		t.Fatal(err)
	}
	if len(one) != 1 || one[0].Name != "steps" {
		t.Fatalf("named query = %v", one)
	}
	var n int
	if err := json.Unmarshal(one[0].Value, &n); err != nil || n != 42 {
		t.Fatalf("steps = %d, %v", n, err)
	}
}

func TestLastChangedRemote(t *testing.T) {
	f := newFabric(t, func(c *Container) {
		svc := echoService()
		_ = svc.SDEs.Set("a", 1)
		_ = svc.SDEs.Set("b", 2)
		c.AddService(svc)
	})
	sde, err := f.client.LastChanged(context.Background(), "echo")
	if err != nil {
		t.Fatal(err)
	}
	if sde.Name != "b" {
		t.Fatalf("last changed = %q", sde.Name)
	}
}

func TestRequestTerminationRemote(t *testing.T) {
	f := newFabric(t, func(c *Container) {
		svc := echoService()
		svc.Lifetimes.Register("res-1", time.Minute, nil)
		c.AddService(svc)
	})
	if err := f.client.RequestTermination(context.Background(), "echo", "res-1", time.Hour); err != nil {
		t.Fatal(err)
	}
	err := f.client.RequestTermination(context.Background(), "echo", "nope", time.Hour)
	if !IsRemoteCode(err, CodeNotFound) {
		t.Fatalf("unknown resource err = %v", err)
	}
}

func TestDuplicateRegistrationPanics(t *testing.T) {
	svc := NewService("x")
	svc.RegisterOp("a", nil)
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("duplicate op should panic")
			}
		}()
		svc.RegisterOp("a", nil)
	}()
	cont := NewContainer(nil, nil, nil)
	cont.AddService(svc)
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("duplicate service should panic")
			}
		}()
		cont.AddService(NewService("x"))
	}()
}

func TestCallTransportErrorIsNotRemote(t *testing.T) {
	ca, _ := gsi.NewAuthority("/O=NEES/CN=CA", time.Hour)
	cred, _ := ca.Issue("/O=NEES/CN=alice", time.Hour)
	cl := NewClient("http://127.0.0.1:1", cred, gsi.NewTrustStore(ca.Cert)) // nothing listens
	err := cl.Call(context.Background(), "echo", "echo", nil, nil)
	if err == nil {
		t.Fatal("expected transport error")
	}
	var re *RemoteError
	if IsRemoteCode(err, CodeInternal) || errorsAs(err, &re) {
		t.Fatalf("transport error misclassified as remote fault: %v", err)
	}
	if !strings.Contains(err.Error(), "transport") {
		t.Fatalf("err = %v", err)
	}
}

// errorsAs avoids importing errors twice in the test file.
func errorsAs(err error, target **RemoteError) bool {
	for err != nil {
		if re, ok := err.(*RemoteError); ok {
			*target = re
			return true
		}
		u, ok := err.(interface{ Unwrap() error })
		if !ok {
			return false
		}
		err = u.Unwrap()
	}
	return false
}

func TestOpError(t *testing.T) {
	e := Errf(CodeConflict, "step %d", 7)
	if e.Error() != "conflict: step 7" {
		t.Fatalf("OpError = %q", e.Error())
	}
}

func TestWaitChangeLocal(t *testing.T) {
	s := NewSDEStore()
	_ = s.Set("status", "idle")
	// Already-newer version returns immediately.
	sde, err := s.WaitChange(context.Background(), "status", 0)
	if err != nil || sde.Version != 1 {
		t.Fatalf("immediate = %+v, %v", sde, err)
	}
	// Blocks until the next update.
	done := make(chan SDE, 1)
	go func() {
		out, err := s.WaitChange(context.Background(), "status", 1)
		if err != nil {
			t.Error(err)
		}
		done <- out
	}()
	time.Sleep(10 * time.Millisecond)
	_ = s.Set("status", "running")
	select {
	case sde := <-done:
		if sde.Version != 2 {
			t.Fatalf("notified version = %d", sde.Version)
		}
	case <-time.After(time.Second):
		t.Fatal("WaitChange never woke")
	}
	// Context cancellation unblocks.
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, err := s.WaitChange(ctx, "status", 99); err == nil {
		t.Fatal("expected context timeout")
	}
}

func TestWaitChangeSurvivesWatchOverflow(t *testing.T) {
	s := NewSDEStore()
	_ = s.Set("wanted", 0)
	done := make(chan SDE, 1)
	go func() {
		out, err := s.WaitChange(context.Background(), "wanted", 1)
		if err != nil {
			t.Error(err)
			return
		}
		done <- out
	}()
	time.Sleep(10 * time.Millisecond)
	// Flood unrelated updates to overflow the 16-slot watch buffer, then
	// update the watched element.
	for i := 0; i < 100; i++ {
		_ = s.Set("noise", i)
	}
	_ = s.Set("wanted", 1)
	select {
	case sde := <-done:
		if sde.Name != "wanted" {
			t.Fatalf("woke on %q", sde.Name)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("overflowed watcher never recovered")
	}
}

func TestWaitServiceDataRemote(t *testing.T) {
	f := newFabric(t, func(c *Container) {
		svc := echoService()
		_ = svc.SDEs.Set("last-transaction", "t0")
		c.AddService(svc)
	})
	svc, _ := f.container.Service("echo")

	// Immediate delivery of the current version.
	sde, err := f.client.WaitServiceData(context.Background(), "echo", "last-transaction", 0, time.Second)
	if err != nil || sde.Version != 1 {
		t.Fatalf("immediate = %+v, %v", sde, err)
	}
	// Notification on change while long-polling.
	done := make(chan SDE, 1)
	go func() {
		out, err := f.client.WaitServiceData(context.Background(), "echo", "last-transaction", 1, 5*time.Second)
		if err != nil {
			t.Error(err)
			return
		}
		done <- out
	}()
	time.Sleep(30 * time.Millisecond)
	_ = svc.SDEs.Set("last-transaction", "t1")
	select {
	case got := <-done:
		var name string
		_ = json.Unmarshal(got.Value, &name)
		if name != "t1" {
			t.Fatalf("notified value = %q", name)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("remote long-poll never delivered")
	}
	// Quiet timeout surfaces as unavailable (the re-arm signal).
	err = func() error {
		_, err := f.client.WaitServiceData(context.Background(), "echo", "last-transaction", 99, 50*time.Millisecond)
		return err
	}()
	if !IsRemoteCode(err, CodeUnavailable) {
		t.Fatalf("quiet poll err = %v, want unavailable", err)
	}
}

func TestWatchServiceDataLoop(t *testing.T) {
	f := newFabric(t, func(c *Container) { c.AddService(echoService()) })
	svc, _ := f.container.Service("echo")
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	var mu sync.Mutex
	var got []string
	done := make(chan error, 1)
	go func() {
		done <- f.client.WatchServiceData(ctx, "echo", "step", 200*time.Millisecond, func(sde SDE) {
			var v string
			_ = json.Unmarshal(sde.Value, &v)
			mu.Lock()
			got = append(got, v)
			mu.Unlock()
		})
	}()
	for i, v := range []string{"a", "b", "c"} {
		time.Sleep(20 * time.Millisecond)
		_ = svc.SDEs.Set("step", v)
		_ = i
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		mu.Lock()
		n := len(got)
		mu.Unlock()
		if n >= 3 || time.Now().After(deadline) {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	cancel()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(got) < 3 || got[0] != "a" || got[len(got)-1] != "c" {
		t.Fatalf("watched = %v", got)
	}
}
