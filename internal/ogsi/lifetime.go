package ogsi

import (
	"sync"
	"time"
)

// LifetimeManager implements OGSI soft-state lifetime management: resources
// are registered with a termination time, clients extend it with keepalives
// (RequestTermination), and an expiry sweep destroys resources whose
// lifetime lapsed. NTCP transactions and NSDS subscriptions are both
// soft-state resources.
type LifetimeManager struct {
	mu        sync.Mutex
	deadlines map[string]time.Time
	onExpire  map[string]func()
	clock     func() time.Time
}

// NewLifetimeManager returns an empty manager.
func NewLifetimeManager() *LifetimeManager {
	return &LifetimeManager{
		deadlines: make(map[string]time.Time),
		onExpire:  make(map[string]func()),
		clock:     time.Now,
	}
}

// SetClock overrides the time source (tests).
func (lm *LifetimeManager) SetClock(clock func() time.Time) {
	lm.mu.Lock()
	defer lm.mu.Unlock()
	lm.clock = clock
}

// Register adds a resource with an initial time-to-live and an optional
// expiry callback (invoked outside the lock by Sweep).
func (lm *LifetimeManager) Register(id string, ttl time.Duration, onExpire func()) {
	lm.mu.Lock()
	defer lm.mu.Unlock()
	lm.deadlines[id] = lm.clock().Add(ttl)
	if onExpire != nil {
		lm.onExpire[id] = onExpire
	}
}

// RequestTermination sets the resource's termination time ttl from now —
// the OGSI keepalive. It reports whether the resource is still alive.
func (lm *LifetimeManager) RequestTermination(id string, ttl time.Duration) bool {
	lm.mu.Lock()
	defer lm.mu.Unlock()
	if _, ok := lm.deadlines[id]; !ok {
		return false
	}
	lm.deadlines[id] = lm.clock().Add(ttl)
	return true
}

// Destroy removes a resource without firing its expiry callback.
func (lm *LifetimeManager) Destroy(id string) {
	lm.mu.Lock()
	defer lm.mu.Unlock()
	delete(lm.deadlines, id)
	delete(lm.onExpire, id)
}

// Alive reports whether the resource exists and has not expired.
func (lm *LifetimeManager) Alive(id string) bool {
	lm.mu.Lock()
	defer lm.mu.Unlock()
	dl, ok := lm.deadlines[id]
	return ok && lm.clock().Before(dl)
}

// Deadline returns the current termination time.
func (lm *LifetimeManager) Deadline(id string) (time.Time, bool) {
	lm.mu.Lock()
	defer lm.mu.Unlock()
	dl, ok := lm.deadlines[id]
	return dl, ok
}

// Sweep destroys every expired resource, invoking expiry callbacks, and
// returns the ids destroyed.
func (lm *LifetimeManager) Sweep() []string {
	lm.mu.Lock()
	now := lm.clock()
	var expired []string
	var callbacks []func()
	for id, dl := range lm.deadlines {
		if !now.Before(dl) {
			expired = append(expired, id)
			if cb := lm.onExpire[id]; cb != nil {
				callbacks = append(callbacks, cb)
			}
			delete(lm.deadlines, id)
			delete(lm.onExpire, id)
		}
	}
	lm.mu.Unlock()
	for _, cb := range callbacks {
		cb()
	}
	return expired
}

// Run sweeps at the given interval until stop is closed. It is the
// container's background reaper.
func (lm *LifetimeManager) Run(interval time.Duration, stop <-chan struct{}) {
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			lm.Sweep()
		case <-stop:
			return
		}
	}
}

// Len returns the number of live resources (expired but unswept resources
// included).
func (lm *LifetimeManager) Len() int {
	lm.mu.Lock()
	defer lm.mu.Unlock()
	return len(lm.deadlines)
}
