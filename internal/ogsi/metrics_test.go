package ogsi

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"

	"neesgrid/internal/telemetry"
)

// TestContainerRecordsDispatchTelemetry: every dispatched op leaves a
// request counter, a latency histogram, and — for faults — a per-code fault
// counter in the container registry.
func TestContainerRecordsDispatchTelemetry(t *testing.T) {
	f := newFabric(t, func(c *Container) { c.AddService(echoService()) })
	ctx := context.Background()
	for i := 0; i < 3; i++ {
		var out map[string]string
		if err := f.client.Call(ctx, "echo", "echo", map[string]string{}, &out); err != nil {
			t.Fatal(err)
		}
	}
	if err := f.client.Call(ctx, "echo", "fail", map[string]string{}, nil); err == nil {
		t.Fatal("fail op should fault")
	}

	snap := f.container.Telemetry().Snapshot()
	if got := snap.Counters["ogsi.echo.echo.requests"]; got != 3 {
		t.Fatalf("echo requests = %d, want 3", got)
	}
	if got := snap.Counters["ogsi.echo.fail.faults."+CodePolicyReject]; got != 1 {
		t.Fatalf("fault counter = %d, want 1", got)
	}
	h := snap.Histograms["ogsi.echo.echo.seconds"]
	if h.Count != 3 || h.P99 <= 0 {
		t.Fatalf("latency histogram = %+v", h)
	}
	if len(snap.Events) == 0 {
		t.Fatal("fault should be logged as an event")
	}
}

// TestMetricsHTTPEndpoint: /metrics serves the registry snapshot as JSON
// without GSI signing.
func TestMetricsHTTPEndpoint(t *testing.T) {
	f := newFabric(t, func(c *Container) { c.AddService(echoService()) })
	var out map[string]string
	if err := f.client.Call(context.Background(), "echo", "echo", map[string]string{}, &out); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get("http://" + f.addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var snap telemetry.Snapshot
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatalf("bad metrics JSON: %v", err)
	}
	if snap.Counters["ogsi.echo.echo.requests"] < 1 {
		t.Fatalf("metrics endpoint counters = %v", snap.Counters)
	}

	post, err := http.Post("http://"+f.addr+"/metrics", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	post.Body.Close()
	if post.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST /metrics status = %d", post.StatusCode)
	}
}

// TestMetricsSDE: the computed "metrics" SDE is remotely inspectable via
// FindServiceData, stays at version 1, and never becomes "last changed".
func TestMetricsSDE(t *testing.T) {
	f := newFabric(t, func(c *Container) { c.AddService(echoService()) })
	ctx := context.Background()
	var out map[string]string
	if err := f.client.Call(ctx, "echo", "echo", map[string]string{}, &out); err != nil {
		t.Fatal(err)
	}

	sdes, err := f.client.FindServiceData(ctx, "echo", "metrics")
	if err != nil {
		t.Fatal(err)
	}
	if len(sdes) != 1 || sdes[0].Name != "metrics" || sdes[0].Version != 1 {
		t.Fatalf("metrics SDE = %+v", sdes)
	}
	var snap telemetry.Snapshot
	if err := json.Unmarshal(sdes[0].Value, &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Counters["ogsi.echo.echo.requests"] < 1 {
		t.Fatalf("metrics SDE counters = %v", snap.Counters)
	}

	// Reading metrics must not disturb change tracking.
	svc, _ := f.container.Service("echo")
	_ = svc.SDEs.Set("status", "running")
	last, ok := svc.SDEs.LastChanged()
	if !ok || last.Name != "status" {
		t.Fatalf("lastChanged = %+v, want status", last)
	}
}

// TestUseTelemetrySharesRegistry: a site can hand the container a shared
// registry so service- and transport-level metrics land together.
func TestUseTelemetrySharesRegistry(t *testing.T) {
	shared := telemetry.NewRegistry()
	f := newFabric(t, func(c *Container) {
		c.UseTelemetry(shared)
		c.AddService(echoService())
	})
	var out map[string]string
	if err := f.client.Call(context.Background(), "echo", "echo", map[string]string{}, &out); err != nil {
		t.Fatal(err)
	}
	if shared.Counter("ogsi.echo.echo.requests").Value() != 1 {
		t.Fatal("shared registry did not receive container metrics")
	}
	if f.container.Telemetry() != shared {
		t.Fatal("container not using shared registry")
	}
}

// TestMetricsPrometheusNegotiation: a scraper that Accepts text/plain gets
// the Prometheus exposition format; everyone else keeps getting JSON.
func TestMetricsPrometheusNegotiation(t *testing.T) {
	f := newFabric(t, func(c *Container) { c.AddService(echoService()) })
	var out map[string]string
	if err := f.client.Call(context.Background(), "echo", "echo", map[string]string{}, &out); err != nil {
		t.Fatal(err)
	}

	req, err := http.NewRequest(http.MethodGet, "http://"+f.addr+"/metrics", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Accept", "text/plain")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != telemetry.PrometheusContentType {
		t.Fatalf("content type = %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	for _, want := range []string{
		"# TYPE ogsi_echo_echo_requests_total counter",
		"ogsi_echo_echo_seconds_bucket{le=\"+Inf\"} 1",
		"ogsi_echo_echo_seconds_count 1",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("exposition missing %q:\n%s", want, text)
		}
	}

	// No Accept header: JSON as before.
	plain, err := http.Get("http://" + f.addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer plain.Body.Close()
	if ct := plain.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("default content type = %q", ct)
	}
}
