// Package ogsi implements the Open Grid Services Infrastructure concepts the
// NEESgrid architecture is built on: stateful services exposing service data
// elements (SDEs), soft-state lifetime management, service inspection
// (FindServiceData), and a secured request/response transport.
//
// The paper's implementation rode on Globus Toolkit 3 (SOAP/WSDL); this
// package keeps the stateful-service semantics — which is what the paper
// actually exercises and credits in its conclusions — over a canonical
// JSON-over-HTTP wire protocol signed with GSI envelopes (internal/gsi).
package ogsi

import (
	"context"
	"encoding/json"
	"fmt"
	"sort"
	"sync"
	"time"
)

// SDE is one service data element: a named, versioned, timestamped value
// exposed for inspection. NTCP publishes every transaction as an SDE plus a
// "most recently changed" element (paper §2.1).
type SDE struct {
	Name      string          `json:"name"`
	Value     json.RawMessage `json:"value"`
	Version   int             `json:"version"`
	UpdatedAt time.Time       `json:"updated_at"`
}

// SDEStore is a concurrency-safe collection of service data elements with
// change tracking.
type SDEStore struct {
	mu          sync.RWMutex
	elements    map[string]SDE
	computed    map[string]func() any
	lastChanged string
	clock       func() time.Time
	watchers    map[int]chan SDE
	nextWatcher int
}

// NewSDEStore returns an empty store.
func NewSDEStore() *SDEStore {
	return &SDEStore{
		elements: make(map[string]SDE),
		computed: make(map[string]func() any),
		clock:    time.Now,
		watchers: make(map[int]chan SDE),
	}
}

// SetComputed registers a computed element: its value is produced by fn at
// read time (Get/Query) rather than stored. Computed elements carry a fixed
// Version of 1 and never count as "last changed" or wake watchers — they are
// for always-current introspection data (e.g. the container's "metrics"
// SDE) whose refresh must not drown out real state-change notifications.
// A stored element with the same name shadows the computed one.
func (s *SDEStore) SetComputed(name string, fn func() any) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.computed[name] = fn
}

// materialize evaluates a computed element. Called without the lock held so
// fn may take its own locks freely.
func (s *SDEStore) materialize(name string, fn func() any) (SDE, bool) {
	raw, err := json.Marshal(fn())
	if err != nil {
		return SDE{}, false
	}
	return SDE{Name: name, Value: raw, Version: 1, UpdatedAt: s.clock()}, true
}

// SetClock overrides the time source (tests).
func (s *SDEStore) SetClock(clock func() time.Time) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.clock = clock
}

// Set marshals v and stores it under name, bumping the version.
func (s *SDEStore) Set(name string, v any) error {
	raw, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("ogsi: marshal SDE %s: %w", name, err)
	}
	s.mu.Lock()
	prev := s.elements[name]
	sde := SDE{Name: name, Value: raw, Version: prev.Version + 1, UpdatedAt: s.clock()}
	s.elements[name] = sde
	s.lastChanged = name
	watchers := make([]chan SDE, 0, len(s.watchers))
	for _, ch := range s.watchers {
		watchers = append(watchers, ch)
	}
	s.mu.Unlock()
	for _, ch := range watchers {
		select {
		case ch <- sde:
		default: // slow watcher: drop, matching NSDS best-effort semantics
		}
	}
	return nil
}

// Delete removes an element (stored and computed forms alike).
func (s *SDEStore) Delete(name string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.elements, name)
	delete(s.computed, name)
	if s.lastChanged == name {
		s.lastChanged = ""
	}
}

// Get returns the element and whether it exists.
func (s *SDEStore) Get(name string) (SDE, bool) {
	s.mu.RLock()
	sde, ok := s.elements[name]
	fn := s.computed[name]
	s.mu.RUnlock()
	if ok || fn == nil {
		return sde, ok
	}
	return s.materialize(name, fn)
}

// GetInto unmarshals the element value into out.
func (s *SDEStore) GetInto(name string, out any) error {
	sde, ok := s.Get(name)
	if !ok {
		return fmt.Errorf("ogsi: no SDE %q", name)
	}
	return json.Unmarshal(sde.Value, out)
}

// Query returns the named elements; with no names it returns every element
// (stored and computed), sorted by name (FindServiceData semantics).
func (s *SDEStore) Query(names ...string) []SDE {
	if len(names) == 0 {
		s.mu.RLock()
		out := make([]SDE, 0, len(s.elements)+len(s.computed))
		for _, sde := range s.elements {
			out = append(out, sde)
		}
		pending := make(map[string]func() any, len(s.computed))
		for n, fn := range s.computed {
			if _, shadowed := s.elements[n]; !shadowed {
				pending[n] = fn
			}
		}
		s.mu.RUnlock()
		for n, fn := range pending {
			if sde, ok := s.materialize(n, fn); ok {
				out = append(out, sde)
			}
		}
		sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
		return out
	}
	var out []SDE
	for _, n := range names {
		if sde, ok := s.Get(n); ok {
			out = append(out, sde)
		}
	}
	return out
}

// LastChanged returns the most recently changed element — the SDE the paper
// uses to monitor server behaviour as a whole.
func (s *SDEStore) LastChanged() (SDE, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.lastChanged == "" {
		return SDE{}, false
	}
	sde, ok := s.elements[s.lastChanged]
	return sde, ok
}

// Len returns the number of elements, computed ones included.
func (s *SDEStore) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	n := len(s.elements)
	for name := range s.computed {
		if _, shadowed := s.elements[name]; !shadowed {
			n++
		}
	}
	return n
}

// WaitChange blocks until the named element's version exceeds
// sinceVersion, the element is first created (sinceVersion 0), or ctx ends.
// It is the primitive behind the container's long-poll notification op —
// the OGSI notification-source role.
func (s *SDEStore) WaitChange(ctx context.Context, name string, sinceVersion int) (SDE, error) {
	// Subscribe before checking so no update is missed in between.
	ch, cancel := s.Watch(16)
	defer cancel()
	if sde, ok := s.Get(name); ok && sde.Version > sinceVersion {
		return sde, nil
	}
	for {
		select {
		case sde, ok := <-ch:
			if !ok {
				return SDE{}, fmt.Errorf("ogsi: watch closed")
			}
			if sde.Name == name && sde.Version > sinceVersion {
				return sde, nil
			}
			// A flood of other updates can overflow the watch buffer and
			// drop our element's change; re-check the store directly.
			if cur, ok := s.Get(name); ok && cur.Version > sinceVersion {
				return cur, nil
			}
		case <-ctx.Done():
			return SDE{}, ctx.Err()
		}
	}
}

// Watch returns a channel receiving subsequent SDE updates (best effort:
// slow receivers miss updates rather than blocking the service) and a
// cancel function.
func (s *SDEStore) Watch(buffer int) (<-chan SDE, func()) {
	if buffer < 1 {
		buffer = 1
	}
	ch := make(chan SDE, buffer)
	s.mu.Lock()
	id := s.nextWatcher
	s.nextWatcher++
	s.watchers[id] = ch
	s.mu.Unlock()
	return ch, func() {
		s.mu.Lock()
		delete(s.watchers, id)
		s.mu.Unlock()
	}
}
