package ogsi

import (
	"testing"
	"time"
)

func TestSDESetGet(t *testing.T) {
	s := NewSDEStore()
	if err := s.Set("status", "running"); err != nil {
		t.Fatal(err)
	}
	var v string
	if err := s.GetInto("status", &v); err != nil {
		t.Fatal(err)
	}
	if v != "running" {
		t.Fatalf("value = %q", v)
	}
	if _, ok := s.Get("missing"); ok {
		t.Fatal("missing key reported present")
	}
	if err := s.GetInto("missing", &v); err == nil {
		t.Fatal("GetInto missing should fail")
	}
}

func TestSDEVersionBumps(t *testing.T) {
	s := NewSDEStore()
	_ = s.Set("x", 1)
	_ = s.Set("x", 2)
	sde, _ := s.Get("x")
	if sde.Version != 2 {
		t.Fatalf("version = %d, want 2", sde.Version)
	}
}

func TestSDELastChanged(t *testing.T) {
	s := NewSDEStore()
	if _, ok := s.LastChanged(); ok {
		t.Fatal("empty store has no last-changed")
	}
	_ = s.Set("a", 1)
	_ = s.Set("b", 2)
	sde, ok := s.LastChanged()
	if !ok || sde.Name != "b" {
		t.Fatalf("last changed = %v %v", sde.Name, ok)
	}
	_ = s.Set("a", 3)
	sde, _ = s.LastChanged()
	if sde.Name != "a" {
		t.Fatalf("last changed = %v, want a", sde.Name)
	}
}

func TestSDEQueryAllSorted(t *testing.T) {
	s := NewSDEStore()
	_ = s.Set("b", 1)
	_ = s.Set("a", 2)
	_ = s.Set("c", 3)
	all := s.Query()
	if len(all) != 3 || all[0].Name != "a" || all[2].Name != "c" {
		t.Fatalf("Query() = %v", all)
	}
	some := s.Query("c", "missing", "a")
	if len(some) != 2 {
		t.Fatalf("Query(names) = %v", some)
	}
}

func TestSDEDelete(t *testing.T) {
	s := NewSDEStore()
	_ = s.Set("a", 1)
	s.Delete("a")
	if _, ok := s.Get("a"); ok {
		t.Fatal("deleted element still present")
	}
	if _, ok := s.LastChanged(); ok {
		t.Fatal("last-changed should clear when that element is deleted")
	}
	if s.Len() != 0 {
		t.Fatal("Len after delete")
	}
}

func TestSDEWatch(t *testing.T) {
	s := NewSDEStore()
	ch, cancel := s.Watch(4)
	defer cancel()
	_ = s.Set("tx", "proposed")
	select {
	case sde := <-ch:
		if sde.Name != "tx" {
			t.Fatalf("watched %q", sde.Name)
		}
	case <-time.After(time.Second):
		t.Fatal("watch did not deliver")
	}
}

func TestSDEWatchDropsWhenFull(t *testing.T) {
	s := NewSDEStore()
	ch, cancel := s.Watch(1)
	defer cancel()
	_ = s.Set("a", 1)
	_ = s.Set("a", 2) // buffer full: dropped, must not block
	_ = s.Set("a", 3)
	got := <-ch
	if got.Name != "a" {
		t.Fatalf("got %q", got.Name)
	}
}

func TestSDEWatchCancel(t *testing.T) {
	s := NewSDEStore()
	_, cancel := s.Watch(1)
	cancel()
	_ = s.Set("a", 1) // must not panic or block
}

func TestSDESetUnmarshalable(t *testing.T) {
	s := NewSDEStore()
	if err := s.Set("bad", func() {}); err == nil {
		t.Fatal("functions are not JSON-marshalable; Set should fail")
	}
}

func TestLifetimeRegisterAliveExpire(t *testing.T) {
	lm := NewLifetimeManager()
	now := time.Unix(1000, 0)
	lm.SetClock(func() time.Time { return now })
	expired := false
	lm.Register("tx-1", 10*time.Second, func() { expired = true })
	if !lm.Alive("tx-1") {
		t.Fatal("fresh resource should be alive")
	}
	now = now.Add(11 * time.Second)
	if lm.Alive("tx-1") {
		t.Fatal("resource should have expired")
	}
	ids := lm.Sweep()
	if len(ids) != 1 || ids[0] != "tx-1" || !expired {
		t.Fatalf("Sweep = %v, expired = %v", ids, expired)
	}
	if lm.Len() != 0 {
		t.Fatal("swept resource still registered")
	}
}

func TestLifetimeKeepalive(t *testing.T) {
	lm := NewLifetimeManager()
	now := time.Unix(1000, 0)
	lm.SetClock(func() time.Time { return now })
	lm.Register("tx", 10*time.Second, nil)
	now = now.Add(8 * time.Second)
	if !lm.RequestTermination("tx", 10*time.Second) {
		t.Fatal("keepalive on live resource failed")
	}
	now = now.Add(9 * time.Second) // 17s after registration, 9s after extend
	if !lm.Alive("tx") {
		t.Fatal("extended resource should be alive")
	}
	if lm.RequestTermination("gone", time.Second) {
		t.Fatal("keepalive on unknown resource should fail")
	}
}

func TestLifetimeDestroySkipsCallback(t *testing.T) {
	lm := NewLifetimeManager()
	now := time.Unix(1000, 0)
	lm.SetClock(func() time.Time { return now })
	fired := false
	lm.Register("tx", time.Second, func() { fired = true })
	lm.Destroy("tx")
	now = now.Add(time.Hour)
	lm.Sweep()
	if fired {
		t.Fatal("Destroy must not fire the expiry callback")
	}
	if _, ok := lm.Deadline("tx"); ok {
		t.Fatal("destroyed resource still has a deadline")
	}
}

func TestLifetimeRun(t *testing.T) {
	lm := NewLifetimeManager()
	fired := make(chan struct{})
	lm.Register("tx", 10*time.Millisecond, func() { close(fired) })
	stop := make(chan struct{})
	go lm.Run(5*time.Millisecond, stop)
	select {
	case <-fired:
	case <-time.After(2 * time.Second):
		t.Fatal("reaper never fired")
	}
	close(stop)
}
