package ogsi

import (
	"context"
	"encoding/json"
	"net/http"
	"testing"

	"neesgrid/internal/trace"
)

// TestCallCreatesClientAndServerSpans exercises the full traced round
// trip: client span → traceparent in the signed request → server span
// parented under it → retroactive gsi.verify children on both sides →
// server span echoed in the signed response.
func TestCallCreatesClientAndServerSpans(t *testing.T) {
	serverTracer := trace.NewTracer("container", trace.NewRecorder(64))
	f := newFabric(t, func(c *Container) {
		c.AddService(echoService())
		c.UseTracer(serverTracer)
	})
	f.client.Tracer = trace.NewTracer("client", trace.NewRecorder(64))

	var out map[string]string
	if err := f.client.Call(context.Background(), "echo", "echo", map[string]string{"msg": "hi"}, &out); err != nil {
		t.Fatal(err)
	}

	clientSpans := f.client.Tracer.Recorder().Spans()
	var clientSpan *trace.SpanData
	for i := range clientSpans {
		if clientSpans[i].Name == "echo.echo" && clientSpans[i].Kind == trace.KindClient {
			clientSpan = &clientSpans[i]
		}
	}
	if clientSpan == nil {
		t.Fatalf("no client span recorded: %+v", clientSpans)
	}
	if clientSpan.Attrs["peer.span"] == "" {
		t.Fatal("client span did not capture the server's echoed traceparent")
	}

	serverSpans := serverTracer.Recorder().Spans()
	var serverSpan, verifySpan *trace.SpanData
	for i := range serverSpans {
		switch {
		case serverSpans[i].Name == "echo.echo" && serverSpans[i].Kind == trace.KindServer:
			serverSpan = &serverSpans[i]
		case serverSpans[i].Name == "gsi.verify":
			verifySpan = &serverSpans[i]
		}
	}
	if serverSpan == nil {
		t.Fatalf("no server span recorded: %+v", serverSpans)
	}
	if serverSpan.TraceID != clientSpan.TraceID {
		t.Fatalf("server trace %s != client trace %s", serverSpan.TraceID, clientSpan.TraceID)
	}
	if serverSpan.Parent != clientSpan.SpanID {
		t.Fatalf("server span parent %s != client span %s", serverSpan.Parent, clientSpan.SpanID)
	}
	if serverSpan.Attrs["caller"] != "/O=NEES/CN=alice" {
		t.Fatalf("server span attrs %+v", serverSpan.Attrs)
	}
	if verifySpan == nil {
		t.Fatal("no retroactive gsi.verify child span on the server")
	}
	if verifySpan.Parent != serverSpan.SpanID || verifySpan.Attrs["side"] != "request" {
		t.Fatalf("gsi.verify lineage wrong: %+v", verifySpan)
	}
	// The client side records its own gsi.verify for the response envelope.
	foundRespVerify := false
	for _, sd := range clientSpans {
		if sd.Name == "gsi.verify" && sd.Attrs["side"] == "response" && sd.Parent == clientSpan.SpanID {
			foundRespVerify = true
		}
	}
	if !foundRespVerify {
		t.Fatalf("no client-side gsi.verify span: %+v", clientSpans)
	}
}

// TestUntracedClientStillPropagatesContext: a caller span in ctx must
// reach the server even when the ogsi.Client itself has no tracer.
func TestUntracedClientStillPropagatesContext(t *testing.T) {
	serverTracer := trace.NewTracer("container", trace.NewRecorder(64))
	f := newFabric(t, func(c *Container) {
		c.AddService(echoService())
		c.UseTracer(serverTracer)
	})
	callerTracer := trace.NewTracer("caller", trace.NewRecorder(8))
	ctx, span := callerTracer.Start(context.Background(), "outer", trace.KindInternal)
	if err := f.client.Call(ctx, "echo", "echo", map[string]string{}, nil); err != nil {
		t.Fatal(err)
	}
	span.End()
	for _, sd := range serverTracer.Recorder().Spans() {
		if sd.Kind == trace.KindServer && sd.Parent == span.Context().SpanID.String() {
			return
		}
	}
	t.Fatalf("server span not parented under the caller's span: %+v", serverTracer.Recorder().Spans())
}

func TestTraceEndpoint(t *testing.T) {
	serverTracer := trace.NewTracer("container", trace.NewRecorder(64))
	f := newFabric(t, func(c *Container) {
		c.AddService(echoService())
		c.UseTracer(serverTracer)
	})
	f.client.Tracer = trace.NewTracer("client", trace.NewRecorder(64))
	if err := f.client.Call(context.Background(), "echo", "echo", map[string]string{}, nil); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get("http://" + f.addr + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var spans []trace.SpanData
	if err := json.NewDecoder(resp.Body).Decode(&spans); err != nil {
		t.Fatal(err)
	}
	if len(spans) == 0 {
		t.Fatal("GET /trace returned no spans")
	}
	// Filter by the trace id of the first span.
	resp2, err := http.Get("http://" + f.addr + "/trace?trace=" + spans[0].TraceID)
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var filtered []trace.SpanData
	if err := json.NewDecoder(resp2.Body).Decode(&filtered); err != nil {
		t.Fatal(err)
	}
	if len(filtered) == 0 {
		t.Fatal("trace filter dropped everything")
	}
	for _, sd := range filtered {
		if sd.TraceID != spans[0].TraceID {
			t.Fatalf("filter leaked span of trace %s", sd.TraceID)
		}
	}
}

func TestTraceEndpointWithoutTracer(t *testing.T) {
	f := newFabric(t, func(c *Container) { c.AddService(echoService()) })
	resp, err := http.Get("http://" + f.addr + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var spans []trace.SpanData
	if err := json.NewDecoder(resp.Body).Decode(&spans); err != nil {
		t.Fatal(err)
	}
	if len(spans) != 0 {
		t.Fatalf("tracerless container served %d spans", len(spans))
	}
}
