package plugin

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"sync"

	"neesgrid/internal/control"
	"neesgrid/internal/core"
)

// Mini-MOST integration (§3.5): "the main software change was a new NTCP
// plugin to communicate with LabVIEW. The control code is developed in
// LabVIEW, with a daemon program for NTCP communications." LabViewDaemon
// emulates that daemon — a JSON-lines TCP front end over the stepper rig —
// and LabViewPlugin is the NTCP plugin that speaks to it.

// lvRequest is one JSON-line command to the daemon.
type lvRequest struct {
	Cmd string  `json:"cmd"` // "move", "read", "reset"
	Pos float64 `json:"pos,omitempty"`
}

// lvResponse is the daemon's JSON-line reply.
type lvResponse struct {
	OK     bool    `json:"ok"`
	Error  string  `json:"error,omitempty"`
	Pos    float64 `json:"pos"`
	Force  float64 `json:"force"`
	Strain float64 `json:"strain"`
}

// LabViewDaemon serves the daemon protocol over a StepperBeam rig.
type LabViewDaemon struct {
	rig *control.StepperBeam
	mu  sync.Mutex
	ln  net.Listener
}

// NewLabViewDaemon wraps the tabletop rig.
func NewLabViewDaemon(rig *control.StepperBeam) *LabViewDaemon {
	return &LabViewDaemon{rig: rig}
}

// Start listens and serves until Close; returns the bound address.
func (d *LabViewDaemon) Start(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("labview: listen: %w", err)
	}
	d.mu.Lock()
	d.ln = ln
	d.mu.Unlock()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go d.serve(conn)
		}
	}()
	return ln.Addr().String(), nil
}

// Close stops the daemon.
func (d *LabViewDaemon) Close() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.ln != nil {
		return d.ln.Close()
	}
	return nil
}

func (d *LabViewDaemon) serve(conn net.Conn) {
	defer conn.Close()
	sc := bufio.NewScanner(conn)
	enc := json.NewEncoder(conn)
	for sc.Scan() {
		var req lvRequest
		if err := json.Unmarshal(sc.Bytes(), &req); err != nil {
			if encErr := enc.Encode(lvResponse{OK: false, Error: "bad request: " + err.Error()}); encErr != nil {
				return
			}
			continue
		}
		if err := enc.Encode(d.handle(&req)); err != nil {
			return
		}
	}
}

func (d *LabViewDaemon) handle(req *lvRequest) lvResponse {
	switch req.Cmd {
	case "move":
		forces, err := d.rig.Apply([]float64{req.Pos})
		if err != nil {
			return lvResponse{OK: false, Error: err.Error()}
		}
		return lvResponse{OK: true, Pos: d.rig.Position(), Force: forces[0], Strain: d.rig.Strain()}
	case "read":
		return lvResponse{OK: true, Pos: d.rig.Position(), Strain: d.rig.Strain()}
	case "reset":
		_ = d.rig.Reset()
		return lvResponse{OK: true}
	default:
		return lvResponse{OK: false, Error: fmt.Sprintf("unknown command %q", req.Cmd)}
	}
}

// LabViewPlugin is the Mini-MOST NTCP plugin: one JSON-line round trip per
// action against the LabVIEW daemon.
type LabViewPlugin struct {
	Point string
	Addr  string
	// Dial overrides the dialer (fault injection); nil means net.Dial.
	Dial func(network, addr string) (net.Conn, error)

	mu   sync.Mutex
	conn net.Conn
	sc   *bufio.Scanner
	enc  *json.Encoder
}

// Validate vetoes unknown points and wrong DOF counts.
func (p *LabViewPlugin) Validate(_ context.Context, actions []core.Action) error {
	for _, a := range actions {
		if a.ControlPoint != p.Point {
			return fmt.Errorf("unknown control point %q", a.ControlPoint)
		}
		if len(a.Displacements) != 1 {
			return fmt.Errorf("labview channel is single-DOF")
		}
	}
	return nil
}

func (p *LabViewPlugin) ensure() error {
	if p.conn != nil {
		return nil
	}
	dial := p.Dial
	if dial == nil {
		dial = net.Dial
	}
	conn, err := dial("tcp", p.Addr)
	if err != nil {
		return fmt.Errorf("labview: dial %s: %w", p.Addr, err)
	}
	p.conn = conn
	p.sc = bufio.NewScanner(conn)
	p.enc = json.NewEncoder(conn)
	return nil
}

func (p *LabViewPlugin) drop() {
	if p.conn != nil {
		_ = p.conn.Close()
		p.conn = nil
	}
}

// Close drops the daemon connection.
func (p *LabViewPlugin) Close() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.drop()
	return nil
}

func (p *LabViewPlugin) roundTrip(req *lvRequest) (*lvResponse, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if err := p.ensure(); err != nil {
		return nil, err
	}
	if err := p.enc.Encode(req); err != nil {
		p.drop()
		return nil, fmt.Errorf("labview: send: %w", err)
	}
	if !p.sc.Scan() {
		p.drop()
		return nil, fmt.Errorf("labview: connection lost")
	}
	var resp lvResponse
	if err := json.Unmarshal(p.sc.Bytes(), &resp); err != nil {
		p.drop()
		return nil, fmt.Errorf("labview: bad response: %w", err)
	}
	if !resp.OK {
		return nil, fmt.Errorf("labview: daemon: %s", resp.Error)
	}
	return &resp, nil
}

// Execute performs one move per action against the daemon.
func (p *LabViewPlugin) Execute(ctx context.Context, actions []core.Action) ([]core.Result, error) {
	results := make([]core.Result, len(actions))
	for i, a := range actions {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		resp, err := p.roundTrip(&lvRequest{Cmd: "move", Pos: a.Displacements[0]})
		if err != nil {
			return nil, err
		}
		results[i] = core.Result{
			ControlPoint:  a.ControlPoint,
			Displacements: []float64{resp.Pos},
			Forces:        []float64{resp.Force},
		}
	}
	return results, nil
}

var _ core.Plugin = (*LabViewPlugin)(nil)
