// Package plugin provides the NTCP control plugins used in the MOST and
// Mini-MOST configurations (paper Fig. 9): the buffering "Mplugin" with its
// poll/notify back-end service (NCSA and CU), a plugin speaking the
// Shore-Western TCP control protocol (UIUC), an xPC-target plugin (CU's
// servo path), a LabVIEW daemon plugin (Mini-MOST), and a human-approval
// wrapper (the §4 procedure used during initial testing at UIUC).
package plugin

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"neesgrid/internal/core"
)

// PendingRequest is one buffered NTCP request awaiting a back-end poll.
type PendingRequest struct {
	ID      string        `json:"id"`
	Actions []core.Action `json:"actions"`
}

// Mplugin is the buffering plugin of §3.1: "instead of pushing requests out
// to the back-end as they were received, the plugin buffered requests and
// implemented a separate service to provide information about them. The
// Matlab simulation … would then poll that service for requests; when the
// simulation received a request, it would perform an appropriate computation
// then call the plugin-implemented service to notify the NTCP server of the
// results."
type Mplugin struct {
	// Point and NDOF describe the control point served.
	Point string
	NDOF  int

	queue   chan *PendingRequest
	nextID  atomic.Int64
	mu      sync.Mutex
	waiters map[string]chan notification
}

type notification struct {
	results []core.Result
	err     error
}

// NewMplugin builds a buffering plugin with the given queue depth.
func NewMplugin(point string, ndof, depth int) *Mplugin {
	if depth < 1 {
		depth = 16
	}
	return &Mplugin{
		Point:   point,
		NDOF:    ndof,
		queue:   make(chan *PendingRequest, depth),
		waiters: make(map[string]chan notification),
	}
}

// Validate checks control point and DOF shape.
func (m *Mplugin) Validate(_ context.Context, actions []core.Action) error {
	for _, a := range actions {
		if a.ControlPoint != m.Point {
			return fmt.Errorf("unknown control point %q (have %q)", a.ControlPoint, m.Point)
		}
		if len(a.Displacements) != m.NDOF {
			return fmt.Errorf("control point %q has %d dofs, action has %d", m.Point, m.NDOF, len(a.Displacements))
		}
	}
	return nil
}

// Execute buffers the request and waits for the back end to poll it and
// notify the outcome.
func (m *Mplugin) Execute(ctx context.Context, actions []core.Action) ([]core.Result, error) {
	id := fmt.Sprintf("req-%d", m.nextID.Add(1))
	ch := make(chan notification, 1)
	m.mu.Lock()
	m.waiters[id] = ch
	m.mu.Unlock()
	defer func() {
		m.mu.Lock()
		delete(m.waiters, id)
		m.mu.Unlock()
	}()

	req := &PendingRequest{ID: id, Actions: actions}
	select {
	case m.queue <- req:
	case <-ctx.Done():
		return nil, fmt.Errorf("mplugin: buffer full, request not queued: %w", ctx.Err())
	}
	select {
	case n := <-ch:
		return n.results, n.err
	case <-ctx.Done():
		return nil, fmt.Errorf("mplugin: back end did not respond: %w", ctx.Err())
	}
}

// Poll blocks until a buffered request is available — the service the
// back-end simulation polls.
func (m *Mplugin) Poll(ctx context.Context) (*PendingRequest, error) {
	select {
	case req := <-m.queue:
		return req, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// TryPoll returns a buffered request if one is immediately available.
func (m *Mplugin) TryPoll() (*PendingRequest, bool) {
	select {
	case req := <-m.queue:
		return req, true
	default:
		return nil, false
	}
}

// Notify delivers the back end's outcome for a polled request.
func (m *Mplugin) Notify(id string, results []core.Result, execErr error) error {
	m.mu.Lock()
	ch, ok := m.waiters[id]
	m.mu.Unlock()
	if !ok {
		return fmt.Errorf("mplugin: no pending request %q", id)
	}
	select {
	case ch <- notification{results: results, err: execErr}:
		return nil
	default:
		return fmt.Errorf("mplugin: request %q already notified", id)
	}
}

// RunBackend is the back-end loop the Matlab simulation ran at NCSA: poll
// for requests, apply them through the supplied function, notify results.
// It returns when ctx is cancelled.
func (m *Mplugin) RunBackend(ctx context.Context, apply func(d []float64) ([]float64, error)) error {
	for {
		req, err := m.Poll(ctx)
		if err != nil {
			if ctx.Err() != nil {
				return nil
			}
			return err
		}
		results := make([]core.Result, 0, len(req.Actions))
		var execErr error
		for _, a := range req.Actions {
			forces, err := apply(a.Displacements)
			if err != nil {
				execErr = err
				break
			}
			results = append(results, core.Result{
				ControlPoint:  a.ControlPoint,
				Displacements: append([]float64(nil), a.Displacements...),
				Forces:        forces,
			})
		}
		if execErr != nil {
			_ = m.Notify(req.ID, nil, execErr)
			continue
		}
		_ = m.Notify(req.ID, results, nil)
	}
}

var _ core.Plugin = (*Mplugin)(nil)
