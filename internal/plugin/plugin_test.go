package plugin

import (
	"context"
	"fmt"
	"math"
	"sync"
	"testing"
	"time"

	"neesgrid/internal/control"
	"neesgrid/internal/core"
)

func action(point string, d float64) []core.Action {
	return []core.Action{{ControlPoint: point, Displacements: []float64{d}}}
}

func TestMpluginPollNotifyCycle(t *testing.T) {
	m := NewMplugin("drift", 1, 4)
	ctx := context.Background()

	// Back end: one manual poll/notify round.
	done := make(chan struct{})
	go func() {
		defer close(done)
		req, err := m.Poll(ctx)
		if err != nil {
			t.Error(err)
			return
		}
		if len(req.Actions) != 1 || req.Actions[0].Displacements[0] != 0.02 {
			t.Errorf("polled %+v", req)
			return
		}
		_ = m.Notify(req.ID, []core.Result{{
			ControlPoint:  "drift",
			Displacements: req.Actions[0].Displacements,
			Forces:        []float64{42},
		}}, nil)
	}()

	results, err := m.Execute(ctx, action("drift", 0.02))
	if err != nil {
		t.Fatal(err)
	}
	<-done
	if len(results) != 1 || results[0].Forces[0] != 42 {
		t.Fatalf("results = %+v", results)
	}
}

func TestMpluginRunBackend(t *testing.T) {
	m := NewMplugin("drift", 1, 4)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_ = m.RunBackend(ctx, func(d []float64) ([]float64, error) {
			return []float64{100 * d[0]}, nil
		})
	}()
	results, err := m.Execute(ctx, action("drift", 0.05))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(results[0].Forces[0]-5) > 1e-12 {
		t.Fatalf("force = %g", results[0].Forces[0])
	}
	cancel()
	wg.Wait()
}

func TestMpluginBackendError(t *testing.T) {
	m := NewMplugin("drift", 1, 4)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() {
		_ = m.RunBackend(ctx, func([]float64) ([]float64, error) {
			return nil, fmt.Errorf("matlab crashed")
		})
	}()
	_, err := m.Execute(ctx, action("drift", 0.01))
	if err == nil {
		t.Fatal("back-end error should propagate")
	}
}

func TestMpluginExecuteTimesOutWithoutBackend(t *testing.T) {
	m := NewMplugin("drift", 1, 4)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, err := m.Execute(ctx, action("drift", 0.01)); err == nil {
		t.Fatal("execute with no back end should time out")
	}
}

func TestMpluginValidate(t *testing.T) {
	m := NewMplugin("drift", 1, 4)
	if err := m.Validate(context.Background(), action("other", 0.01)); err == nil {
		t.Fatal("unknown point should fail")
	}
	if err := m.Validate(context.Background(), []core.Action{{ControlPoint: "drift", Displacements: []float64{1, 2}}}); err == nil {
		t.Fatal("DOF mismatch should fail")
	}
}

func TestMpluginNotifyUnknownID(t *testing.T) {
	m := NewMplugin("drift", 1, 4)
	if err := m.Notify("nope", nil, nil); err == nil {
		t.Fatal("notify for unknown request should fail")
	}
}

func TestMpluginTryPoll(t *testing.T) {
	m := NewMplugin("drift", 1, 4)
	if _, ok := m.TryPoll(); ok {
		t.Fatal("empty queue should not yield a request")
	}
	go func() { _, _ = m.Execute(context.Background(), action("drift", 0.01)) }()
	deadline := time.Now().Add(time.Second)
	for {
		if req, ok := m.TryPoll(); ok {
			_ = m.Notify(req.ID, []core.Result{}, nil)
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("request never queued")
		}
		time.Sleep(time.Millisecond)
	}
}

func quietActuator() control.ActuatorConfig {
	cfg := control.DefaultActuator()
	cfg.PositionNoiseStd = 0
	cfg.ForceNoiseStd = 0
	return cfg
}

func TestShoreWesternPluginExecute(t *testing.T) {
	rig := control.NewColumnRig("uiuc", quietActuator(), 1000, 0, 0)
	srv := control.NewShoreWesternServer(rig)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	p := &ShoreWesternPlugin{Point: "left-column", Client: control.NewShoreWesternClient(addr)}
	defer p.Client.Close()
	if err := p.Validate(context.Background(), action("left-column", 0.02)); err != nil {
		t.Fatal(err)
	}
	results, err := p.Execute(context.Background(), action("left-column", 0.02))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(results[0].Forces[0]-20) > 1 {
		t.Fatalf("force = %g, want ~20", results[0].Forces[0])
	}
	if math.Abs(results[0].Displacements[0]-0.02) > 1e-3 {
		t.Fatalf("achieved = %g", results[0].Displacements[0])
	}
}

func TestShoreWesternPluginValidateLimits(t *testing.T) {
	p := &ShoreWesternPlugin{Point: "left-column", MaxDisplacement: 0.05}
	if err := p.Validate(context.Background(), action("left-column", 0.1)); err == nil {
		t.Fatal("oversized move should be vetoed")
	}
	if err := p.Validate(context.Background(), action("wrong", 0.01)); err == nil {
		t.Fatal("unknown point should be vetoed")
	}
}

func TestXPCPluginExecute(t *testing.T) {
	rig := control.NewColumnRig("cu", quietActuator(), 1000, 0, 0)
	target := control.NewXPCTarget(rig)
	target.Start(time.Millisecond)
	defer target.Stop()

	p := &XPCPlugin{Point: "right-column", Target: target, SettleTimeout: 2 * time.Second}
	results, err := p.Execute(context.Background(), action("right-column", 0.01))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(results[0].Forces[0]-10) > 1 {
		t.Fatalf("force = %g", results[0].Forces[0])
	}
}

func TestXPCPluginValidate(t *testing.T) {
	p := &XPCPlugin{Point: "right-column"}
	if err := p.Validate(context.Background(), action("x", 1)); err == nil {
		t.Fatal("unknown point")
	}
}

func TestHumanApprovalPlugin(t *testing.T) {
	inner := core.PluginFunc(func(_ context.Context, actions []core.Action) ([]core.Result, error) {
		return []core.Result{{ControlPoint: actions[0].ControlPoint, Forces: []float64{1}}}, nil
	})
	approvals := 0
	p := &HumanApprovalPlugin{Inner: inner, Approve: func([]core.Action) bool {
		approvals++
		return approvals == 1 // approve only the first
	}}
	if _, err := p.Execute(context.Background(), action("drift", 0.01)); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Execute(context.Background(), action("drift", 0.01)); err == nil {
		t.Fatal("withheld approval should abort execution")
	}
	// Nil approver denies everything.
	deny := &HumanApprovalPlugin{Inner: inner}
	if _, err := deny.Execute(context.Background(), action("drift", 0.01)); err == nil {
		t.Fatal("nil approver should deny")
	}
}

func TestLabViewDaemonAndPlugin(t *testing.T) {
	rig := control.NewStepperBeam("mini", 1080, 1e-4, 1000)
	daemon := NewLabViewDaemon(rig)
	addr, err := daemon.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer daemon.Close()

	p := &LabViewPlugin{Point: "beam", Addr: addr}
	defer p.Close()
	results, err := p.Execute(context.Background(), action("beam", 0.005))
	if err != nil {
		t.Fatal(err)
	}
	// Stepper quantization: 0.005 / 1e-4 = 50 steps exactly.
	if math.Abs(results[0].Displacements[0]-0.005) > 1e-12 {
		t.Fatalf("pos = %g", results[0].Displacements[0])
	}
	if math.Abs(results[0].Forces[0]-1080*0.005) > 1e-9 {
		t.Fatalf("force = %g", results[0].Forces[0])
	}
}

func TestLabViewPluginDaemonError(t *testing.T) {
	rig := control.NewStepperBeam("mini", 1080, 1e-4, 10)
	daemon := NewLabViewDaemon(rig)
	addr, _ := daemon.Start("127.0.0.1:0")
	defer daemon.Close()
	p := &LabViewPlugin{Point: "beam", Addr: addr}
	defer p.Close()
	if _, err := p.Execute(context.Background(), action("beam", 0.5)); err == nil {
		t.Fatal("travel-limit violation should propagate")
	}
}

func TestLabViewPluginValidate(t *testing.T) {
	p := &LabViewPlugin{Point: "beam"}
	if err := p.Validate(context.Background(), action("other", 0.01)); err == nil {
		t.Fatal("unknown point")
	}
}

func TestLabViewDaemonUnknownCommand(t *testing.T) {
	rig := control.NewStepperBeam("mini", 1080, 1e-4, 1000)
	d := NewLabViewDaemon(rig)
	resp := d.handle(&lvRequest{Cmd: "frob"})
	if resp.OK {
		t.Fatal("unknown command should fail")
	}
	resp = d.handle(&lvRequest{Cmd: "reset"})
	if !resp.OK {
		t.Fatal("reset should succeed")
	}
	resp = d.handle(&lvRequest{Cmd: "read"})
	if !resp.OK || resp.Pos != 0 {
		t.Fatalf("read = %+v", resp)
	}
}

// Integration: an Mplugin-backed NTCP server behaves identically to a
// direct plugin — the substitution-transparency core of E3, at plugin
// granularity.
func TestMpluginBehindNTCPServer(t *testing.T) {
	m := NewMplugin("drift", 1, 4)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() {
		_ = m.RunBackend(ctx, func(d []float64) ([]float64, error) {
			return []float64{2000 * d[0]}, nil
		})
	}()
	srv := core.NewServer(m, nil, core.ServerOptions{})
	rec, err := srv.Propose(ctx, "coord", &core.Proposal{
		Name:    "s1",
		Actions: action("drift", 0.01),
	})
	if err != nil || rec.State != core.StateAccepted {
		t.Fatalf("propose: %+v, %v", rec, err)
	}
	rec, err = srv.Execute(ctx, "coord", "s1")
	if err != nil {
		t.Fatal(err)
	}
	if rec.State != core.StateExecuted || math.Abs(rec.Results[0].Forces[0]-20) > 1e-9 {
		t.Fatalf("record = %+v", rec)
	}
}
