package plugin

import (
	"context"
	"fmt"
	"time"

	"neesgrid/internal/control"
	"neesgrid/internal/core"
)

// ShoreWesternPlugin maps NTCP actions onto the UIUC Shore-Western control
// system over its TCP protocol (Fig. 9, left site).
type ShoreWesternPlugin struct {
	Point string
	// Client talks to the controller; reconnects internally.
	Client *control.ShoreWesternClient
	// MaxDisplacement lets the plugin itself veto oversized commands
	// before they reach the controller (a second, site-side guard beyond
	// SitePolicy). 0 disables.
	MaxDisplacement float64
}

// Validate vetoes unknown points, wrong DOF counts, and oversized moves.
func (p *ShoreWesternPlugin) Validate(_ context.Context, actions []core.Action) error {
	for _, a := range actions {
		if a.ControlPoint != p.Point {
			return fmt.Errorf("unknown control point %q", a.ControlPoint)
		}
		if len(a.Displacements) != 1 {
			return fmt.Errorf("shore-western channel is single-DOF")
		}
		if p.MaxDisplacement > 0 && abs(a.Displacements[0]) > p.MaxDisplacement {
			return fmt.Errorf("displacement %g exceeds site limit %g", a.Displacements[0], p.MaxDisplacement)
		}
	}
	return nil
}

// Execute moves the actuator and reads back position and force.
func (p *ShoreWesternPlugin) Execute(ctx context.Context, actions []core.Action) ([]core.Result, error) {
	results := make([]core.Result, len(actions))
	for i, a := range actions {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if _, err := p.Client.Move(a.Displacements[0]); err != nil {
			return nil, fmt.Errorf("shore-western move: %w", err)
		}
		pos, force, err := p.Client.Read()
		if err != nil {
			return nil, fmt.Errorf("shore-western read: %w", err)
		}
		results[i] = core.Result{
			ControlPoint:  a.ControlPoint,
			Displacements: []float64{pos},
			Forces:        []float64{force},
		}
	}
	return results, nil
}

var _ core.Plugin = (*ShoreWesternPlugin)(nil)

// XPCPlugin drives the CU path of Fig. 9: commands posted to an xPC-style
// real-time target, outcome collected by polling until settled.
type XPCPlugin struct {
	Point  string
	Target *control.XPCTarget
	// SettleTimeout bounds the polling wait per action.
	SettleTimeout time.Duration
}

// Validate vetoes unknown points and wrong DOF counts.
func (p *XPCPlugin) Validate(_ context.Context, actions []core.Action) error {
	for _, a := range actions {
		if a.ControlPoint != p.Point {
			return fmt.Errorf("unknown control point %q", a.ControlPoint)
		}
		if len(a.Displacements) != 1 {
			return fmt.Errorf("xpc channel is single-DOF")
		}
	}
	return nil
}

// Execute posts each action and polls for settlement.
func (p *XPCPlugin) Execute(ctx context.Context, actions []core.Action) ([]core.Result, error) {
	timeout := p.SettleTimeout
	if timeout <= 0 {
		timeout = 10 * time.Second
	}
	results := make([]core.Result, len(actions))
	for i, a := range actions {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		p.Target.SetTarget(a.Displacements[0])
		pos, force, err := p.Target.WaitSettled(timeout)
		if err != nil {
			return nil, fmt.Errorf("xpc: %w", err)
		}
		results[i] = core.Result{
			ControlPoint:  a.ControlPoint,
			Displacements: []float64{pos},
			Forces:        []float64{force},
		}
	}
	return results, nil
}

var _ core.Plugin = (*XPCPlugin)(nil)

// HumanApprovalPlugin wraps another plugin so that every execution requires
// an explicit approval decision — the §4 operational procedure "a
// plugin/backend system that required a human to approve each action (used
// only during initial testing at UIUC)".
type HumanApprovalPlugin struct {
	Inner core.Plugin
	// Approve is consulted per execution; returning false aborts it.
	Approve func(actions []core.Action) bool
}

// Validate delegates to the inner plugin.
func (p *HumanApprovalPlugin) Validate(ctx context.Context, actions []core.Action) error {
	return p.Inner.Validate(ctx, actions)
}

// Execute asks for approval, then delegates.
func (p *HumanApprovalPlugin) Execute(ctx context.Context, actions []core.Action) ([]core.Result, error) {
	if p.Approve == nil || !p.Approve(actions) {
		return nil, fmt.Errorf("human approval withheld")
	}
	return p.Inner.Execute(ctx, actions)
}

var _ core.Plugin = (*HumanApprovalPlugin)(nil)

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
