// Package repo couples the NEESgrid metadata service (NMDS) and file
// management service (NFMS) behind the Façade pattern the paper names
// (§2.3, Fig. 3), and adds the two auxiliary pieces the paper lists: an
// ingestion tool that archives data and metadata incrementally as an
// experiment runs, and a servlet-style bridge between GridFTP and HTTPS so
// browser-class clients can download experiment data.
package repo

import (
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"neesgrid/internal/daq"
	"neesgrid/internal/nfms"
	"neesgrid/internal/nmds"
)

// SensorDataSchema is the built-in schema for ingested sensor blocks.
const SensorDataSchema = "neesgrid.sensor-block"

// ExperimentSchema is the built-in schema for experiment descriptions —
// "metadata that described each of the three components of the experiment
// in terms of the structural configuration, material properties, and
// instrumentation" (§3.3).
const ExperimentSchema = "neesgrid.experiment"

// Repository is the façade over NMDS + NFMS. Both services remain usable
// independently, as the paper specifies.
type Repository struct {
	Meta  *nmds.Store
	Files *nfms.Service
	// Owner is the identity the repository acts as for bootstrap objects.
	Owner string
}

// New builds a repository and installs the built-in schemas.
func New(owner string) (*Repository, error) {
	r := &Repository{Meta: nmds.NewStore(), Files: nfms.New(), Owner: owner}
	_, err := r.Meta.Create(owner, SensorDataSchema, nmds.SchemaSchema, nmds.SchemaBody{
		Fields: map[string]string{
			"experiment": "string",
			"site":       "string",
			"logical":    "string",
			"channels":   "array",
			"first_step": "number",
			"last_step":  "number",
		},
		Required: []string{"experiment", "site", "logical"},
	})
	if err != nil {
		return nil, fmt.Errorf("repo: install sensor schema: %w", err)
	}
	_, err = r.Meta.Create(owner, ExperimentSchema, nmds.SchemaSchema, nmds.SchemaBody{
		Fields: map[string]string{
			"name":            "string",
			"description":     "string",
			"sites":           "array",
			"structure":       "object",
			"instrumentation": "array",
		},
		Required: []string{"name"},
	})
	if err != nil {
		return nil, fmt.Errorf("repo: install experiment schema: %w", err)
	}
	return r, nil
}

// DescribeExperiment stores the pre-experiment metadata (§3.3: uploaded to
// the repository prior to the experiment).
func (r *Repository) DescribeExperiment(owner, id string, body map[string]any) (*nmds.Object, error) {
	return r.Meta.Create(owner, id, ExperimentSchema, body)
}

// IngestFile uploads one file via a replica target and records a metadata
// object describing it, linked by logical name.
func (r *Repository) IngestFile(owner, experiment, site, logical, localPath string, replica nfms.Replica, extra map[string]any) (*nmds.Object, error) {
	if _, err := r.Files.Upload(owner, logical, localPath, replica); err != nil {
		return nil, err
	}
	body := map[string]any{
		"experiment": experiment,
		"site":       site,
		"logical":    logical,
	}
	for k, v := range extra {
		body[k] = v
	}
	metaID := "data:" + logical
	obj, err := r.Meta.Create(owner, metaID, SensorDataSchema, body)
	if err != nil {
		return nil, fmt.Errorf("repo: metadata for %q: %w", logical, err)
	}
	return obj, nil
}

// Fetch downloads a logical file to localPath.
func (r *Repository) Fetch(logical, localPath string) error {
	return r.Files.Download(logical, localPath)
}

// ---------------------------------------------------------------------------
// Ingestion tool
// ---------------------------------------------------------------------------

// Ingestor is the incremental ingestion tool of §2.3/§3.2: it polls a DAQ
// spool directory and uploads each deposited block to the repository while
// the experiment is still running.
type Ingestor struct {
	Repo       *Repository
	Spool      *daq.Spool
	Owner      string
	Experiment string
	Site       string
	// Replica returns the upload target for a block file name.
	Replica func(blockName string) nfms.Replica

	mu       sync.Mutex
	uploaded int
}

// Uploaded returns how many blocks have been ingested.
func (ing *Ingestor) Uploaded() int {
	ing.mu.Lock()
	defer ing.mu.Unlock()
	return ing.uploaded
}

// PollOnce ingests every deposited block currently in the spool.
func (ing *Ingestor) PollOnce() ([]string, error) {
	return ing.Spool.PollOnce(func(path string) error {
		block := filepath.Base(path)
		readings, err := daq.ReadBlock(path)
		if err != nil {
			return err
		}
		channels := make([]any, 0, 4)
		seen := make(map[string]bool)
		firstStep, lastStep := -1, -1
		for _, rd := range readings {
			if !seen[rd.Channel] {
				seen[rd.Channel] = true
				channels = append(channels, rd.Channel)
			}
			if firstStep < 0 || rd.Step < firstStep {
				firstStep = rd.Step
			}
			if rd.Step > lastStep {
				lastStep = rd.Step
			}
		}
		logical := fmt.Sprintf("%s/%s/%s", ing.Experiment, ing.Site, block)
		_, err = ing.Repo.IngestFile(ing.Owner, ing.Experiment, ing.Site, logical, path,
			ing.Replica(block), map[string]any{
				"channels":   channels,
				"first_step": firstStep,
				"last_step":  lastStep,
			})
		if err != nil {
			return err
		}
		ing.mu.Lock()
		ing.uploaded++
		ing.mu.Unlock()
		return nil
	})
}

// Run polls at the given interval until stop closes, then drains the spool
// one final time (with a Flush so the tail block is deposited).
func (ing *Ingestor) Run(interval time.Duration, stop <-chan struct{}) error {
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			if _, err := ing.PollOnce(); err != nil {
				return err
			}
		case <-stop:
			if err := ing.Spool.Flush(); err != nil {
				return err
			}
			_, err := ing.PollOnce()
			return err
		}
	}
}

// ---------------------------------------------------------------------------
// GridFTP ↔ HTTPS bridge
// ---------------------------------------------------------------------------

// Bridge is the servlet of §2.3: GET /files/<logical-name> resolves the
// logical file through NFMS, fetches it over its native transport, and
// streams it to the HTTP client.
type Bridge struct {
	Repo *Repository
	// TempDir holds staging copies; defaults to os.TempDir().
	TempDir string
}

// ServeHTTP handles /files/<logical>.
func (b *Bridge) ServeHTTP(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodGet {
		http.Error(w, "bridge: GET only", http.StatusMethodNotAllowed)
		return
	}
	logical := strings.TrimPrefix(req.URL.Path, "/files/")
	if logical == "" || logical == req.URL.Path {
		http.Error(w, "bridge: want /files/<logical>", http.StatusBadRequest)
		return
	}
	dir := b.TempDir
	if dir == "" {
		dir = os.TempDir()
	}
	tmp, err := os.CreateTemp(dir, "bridge-*")
	if err != nil {
		http.Error(w, "bridge: staging: "+err.Error(), http.StatusInternalServerError)
		return
	}
	tmpName := tmp.Name()
	_ = tmp.Close()
	defer os.Remove(tmpName)
	if err := b.Repo.Fetch(logical, tmpName); err != nil {
		http.Error(w, "bridge: "+err.Error(), http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	http.ServeFile(w, req, tmpName)
}
