package repo

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"neesgrid/internal/daq"
	"neesgrid/internal/gridftp"
	"neesgrid/internal/nfms"
)

const owner = "/O=NEES/CN=repo"
const alice = "/O=NEES/CN=alice"

func gridftpServer(t *testing.T) string {
	t.Helper()
	srv, err := gridftp.NewServer(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = srv.Close() })
	return addr
}

func TestNewInstallsSchemas(t *testing.T) {
	r, err := New(owner)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{SensorDataSchema, ExperimentSchema} {
		if _, err := r.Meta.Get(id); err != nil {
			t.Fatalf("schema %s missing: %v", id, err)
		}
	}
}

func TestDescribeExperimentValidated(t *testing.T) {
	r, _ := New(owner)
	if _, err := r.DescribeExperiment(alice, "exp:most", map[string]any{
		"name":        "MOST",
		"description": "Multi-site Online Simulation Test",
		"sites":       []string{"uiuc", "ncsa", "cu"},
	}); err != nil {
		t.Fatal(err)
	}
	// Missing required "name".
	if _, err := r.DescribeExperiment(alice, "exp:bad", map[string]any{
		"description": "no name",
	}); err == nil {
		t.Fatal("schema violation accepted")
	}
}

func TestIngestFileAndFetch(t *testing.T) {
	addr := gridftpServer(t)
	r, _ := New(owner)
	src := filepath.Join(t.TempDir(), "block.csv")
	content := []byte("channel,value\nuiuc.lvdt1,0.01\n")
	if err := os.WriteFile(src, content, 0o644); err != nil {
		t.Fatal(err)
	}
	obj, err := r.IngestFile(alice, "most", "uiuc", "most/uiuc/block.csv", src,
		nfms.Replica{Transport: "gridftp", Addr: addr, Path: "most/uiuc/block.csv"},
		map[string]any{"channels": []string{"uiuc.lvdt1"}, "first_step": 0, "last_step": 0})
	if err != nil {
		t.Fatal(err)
	}
	if obj.Schema != SensorDataSchema {
		t.Fatalf("metadata schema = %q", obj.Schema)
	}
	var body map[string]any
	_ = json.Unmarshal(obj.Body, &body)
	if body["site"] != "uiuc" || body["logical"] != "most/uiuc/block.csv" {
		t.Fatalf("metadata = %v", body)
	}
	dst := filepath.Join(t.TempDir(), "back.csv")
	if err := r.Fetch("most/uiuc/block.csv", dst); err != nil {
		t.Fatal(err)
	}
	got, _ := os.ReadFile(dst)
	if !bytes.Equal(got, content) {
		t.Fatal("fetched content differs")
	}
}

func TestIngestorIncrementalArchival(t *testing.T) {
	// E9: the §3.2 path — DAQ deposits spool blocks, the ingestion tool
	// uploads them during the run, metadata lands alongside.
	addr := gridftpServer(t)
	r, _ := New(owner)
	spoolDir := t.TempDir()
	spool, err := daq.NewSpool(spoolDir, 3)
	if err != nil {
		t.Fatal(err)
	}
	d := daq.New("uiuc", 1)
	pos := 0.0
	_ = d.AddChannel(daq.Channel{Name: "uiuc.lvdt1", Kind: daq.LVDT, Units: "m", Read: func() float64 { return pos }})
	d.AttachSpool(spool)

	ing := &Ingestor{
		Repo: r, Spool: spool, Owner: alice,
		Experiment: "most", Site: "uiuc",
		Replica: func(block string) nfms.Replica {
			return nfms.Replica{Transport: "gridftp", Addr: addr, Path: "most/uiuc/" + block}
		},
	}

	// Simulate 10 steps with mid-run ingestion polls.
	for step := 0; step < 10; step++ {
		pos = float64(step) * 0.001
		if _, err := d.Scan(step, float64(step)*0.01); err != nil {
			t.Fatal(err)
		}
		if step == 5 {
			if _, err := ing.PollOnce(); err != nil {
				t.Fatal(err)
			}
		}
	}
	if ing.Uploaded() == 0 {
		t.Fatal("mid-run ingestion uploaded nothing")
	}
	// Final drain.
	if err := spool.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, err := ing.PollOnce(); err != nil {
		t.Fatal(err)
	}
	// 10 scans at block size 3 -> 4 blocks total.
	if ing.Uploaded() != 4 {
		t.Fatalf("uploaded %d blocks, want 4", ing.Uploaded())
	}
	// Every block has queryable metadata with step ranges.
	objs := r.Meta.List(SensorDataSchema)
	if len(objs) != 4 {
		t.Fatalf("%d metadata objects", len(objs))
	}
	var body map[string]any
	_ = json.Unmarshal(objs[0].Body, &body)
	if body["first_step"] == nil || body["channels"] == nil {
		t.Fatalf("metadata missing step range: %v", body)
	}
	// Files are downloadable.
	entries := r.Files.List()
	if len(entries) != 4 {
		t.Fatalf("%d catalog entries", len(entries))
	}
	dst := filepath.Join(t.TempDir(), "b.csv")
	if err := r.Fetch(entries[0].Logical, dst); err != nil {
		t.Fatal(err)
	}
	readings, err := daq.ReadBlock(dst)
	if err != nil {
		t.Fatal(err)
	}
	if len(readings) == 0 {
		t.Fatal("downloaded block empty")
	}
}

func TestIngestorRun(t *testing.T) {
	addr := gridftpServer(t)
	r, _ := New(owner)
	spool, _ := daq.NewSpool(t.TempDir(), 2)
	d := daq.New("cu", 1)
	_ = d.AddChannel(daq.Channel{Name: "cu.load1", Read: func() float64 { return 5 }})
	d.AttachSpool(spool)
	ing := &Ingestor{
		Repo: r, Spool: spool, Owner: alice, Experiment: "most", Site: "cu",
		Replica: func(block string) nfms.Replica {
			return nfms.Replica{Transport: "gridftp", Addr: addr, Path: "most/cu/" + block}
		},
	}
	stop := make(chan struct{})
	done := make(chan error, 1)
	go func() { done <- ing.Run(5*time.Millisecond, stop) }()
	for i := 0; i < 5; i++ {
		_, _ = d.Scan(i, float64(i)*0.01)
		time.Sleep(2 * time.Millisecond)
	}
	close(stop)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if ing.Uploaded() != 3 { // 5 scans, block 2 -> 2 full + 1 flushed
		t.Fatalf("uploaded %d", ing.Uploaded())
	}
}

func TestBridgeServesLogicalFiles(t *testing.T) {
	// The §2.3 GridFTP↔HTTPS bridge: browsers download experiment data by
	// logical name.
	addr := gridftpServer(t)
	r, _ := New(owner)
	src := filepath.Join(t.TempDir(), "d.bin")
	content := []byte("structure response data")
	_ = os.WriteFile(src, content, 0o644)
	if _, err := r.IngestFile(alice, "most", "ncsa", "most/ncsa/d.bin", src,
		nfms.Replica{Transport: "gridftp", Addr: addr, Path: "most/ncsa/d.bin"}, nil); err != nil {
		t.Fatal(err)
	}
	bridge := &Bridge{Repo: r, TempDir: t.TempDir()}
	ts := httptest.NewServer(bridge)
	defer ts.Close()

	resp, err := ts.Client().Get(ts.URL + "/files/most/ncsa/d.bin")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("status %d", resp.StatusCode)
	}
	got, _ := io.ReadAll(resp.Body)
	if !bytes.Equal(got, content) {
		t.Fatal("bridge content differs")
	}

	// Missing file -> 404.
	resp2, _ := ts.Client().Get(ts.URL + "/files/nope")
	_ = resp2.Body.Close()
	if resp2.StatusCode != 404 {
		t.Fatalf("missing file status %d", resp2.StatusCode)
	}
	// Bad path -> 400.
	resp3, _ := ts.Client().Get(ts.URL + "/wrong")
	_ = resp3.Body.Close()
	if resp3.StatusCode != 400 {
		t.Fatalf("bad path status %d", resp3.StatusCode)
	}
}
