package runtime

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"neesgrid/internal/gsi"
	"neesgrid/internal/trace"
)

// ExitError carries an explicit process exit code out of a Main job —
// e.g. the coordinator's "run terminated prematurely" code 2.
type ExitError struct {
	Code int
	Err  error
}

func (e *ExitError) Error() string {
	if e.Err != nil {
		return e.Err.Error()
	}
	return fmt.Sprintf("exit code %d", e.Code)
}

func (e *ExitError) Unwrap() error { return e.Err }

// Exitf builds an ExitError with a formatted message.
func Exitf(code int, format string, args ...any) *ExitError {
	return &ExitError{Code: code, Err: fmt.Errorf(format, args...)}
}

// Main is the shared daemon entrypoint: it translates SIGINT/SIGTERM into
// one context cancellation, starts the supervisor, runs the foreground
// job (nil means "serve until signalled"), then drains the supervisor
// under its stop budget. It returns the process exit code:
//
//	0  clean run and clean drain (including a signal-initiated one)
//	1  a component failed to start, the job failed, or the drain erred
//	n  the job returned *ExitError{Code: n}
//
// The job receives the signal-cancellable context; a daemon-style job
// prints its banner and blocks on ctx.Done(). Main never calls os.Exit —
// callers do, so defers in their main run first.
func Main(name string, sup *Supervisor, job func(ctx context.Context) error) int {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if err := sup.Start(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
		return 1
	}

	code := 0
	var jobErr error
	if job != nil {
		jobErr = job(ctx)
	} else {
		<-ctx.Done()
	}
	if jobErr != nil {
		var ee *ExitError
		if errors.As(jobErr, &ee) {
			code = ee.Code
			if ee.Err != nil {
				fmt.Fprintf(os.Stderr, "%s: %v\n", name, ee.Err)
			}
		} else {
			code = 1
			fmt.Fprintf(os.Stderr, "%s: %v\n", name, jobErr)
		}
	}

	// Stop signal delivery before the drain: a second Ctrl-C during a
	// stuck drain kills the process instead of being swallowed.
	stop()
	stopCtx, cancel := context.WithTimeout(context.Background(), sup.StopBudget())
	defer cancel()
	if err := sup.Stop(stopCtx); err != nil {
		fmt.Fprintf(os.Stderr, "%s: drain: %v\n", name, err)
		if code == 0 {
			code = 1
		}
	}
	return code
}

// Identity bundles the loaded GSI state every secured daemon needs: its
// own credential, the trust store rooted at the deployment CA, and the
// gridmap of identities allowed in.
type Identity struct {
	CACert  *gsi.Certificate
	Cred    *gsi.Credential
	Trust   *gsi.TrustStore
	Gridmap *gsi.Gridmap
}

// ServiceName returns the credential CN — the name a daemon traces and
// logs under (e.g. "/O=NEES/CN=uiuc" → "uiuc").
func (id *Identity) ServiceName() string {
	svc := id.Cred.Identity()
	if i := strings.LastIndex(svc, "CN="); i >= 0 {
		svc = svc[i+len("CN="):]
	}
	return svc
}

// GSIFlags is the credential/gridmap flag trio every secured daemon used
// to hand-roll. Register the flags, flag.Parse, then Load.
type GSIFlags struct {
	CACert string
	Cred   string
	Allow  string
}

// Register declares -ca-cert, -cred and -allow on fs (flag.CommandLine
// when nil).
func (g *GSIFlags) Register(fs *flag.FlagSet) {
	if fs == nil {
		fs = flag.CommandLine
	}
	fs.StringVar(&g.CACert, "ca-cert", "certs/ca.cert", "trusted CA certificate")
	fs.StringVar(&g.Cred, "cred", "", "service credential (from gridca issue)")
	fs.StringVar(&g.Allow, "allow", "", "comma-separated identity=account gridmap entries")
}

// Load reads the CA certificate and credential and parses the gridmap.
func (g *GSIFlags) Load() (*Identity, error) {
	if g.Cred == "" {
		return nil, fmt.Errorf("need -cred (issue one with gridca)")
	}
	cert, err := gsi.LoadCertificate(g.CACert)
	if err != nil {
		return nil, fmt.Errorf("load CA cert: %w", err)
	}
	cred, err := gsi.LoadCredential(g.Cred)
	if err != nil {
		return nil, fmt.Errorf("load credential: %w", err)
	}
	gm, err := gsi.ParseGridmap(g.Allow)
	if err != nil {
		return nil, fmt.Errorf("bad -allow: %w", err)
	}
	return &Identity{
		CACert:  cert,
		Cred:    cred,
		Trust:   gsi.NewTrustStore(cert),
		Gridmap: gm,
	}, nil
}

// DebugFlags is the debug/probe listener pair of flags shared by the
// daemons: -pprof picks the side-listener address (profiles, /trace,
// /healthz, /readyz) and -lameduck the pause between flipping /readyz
// not-ready and closing the first listener.
type DebugFlags struct {
	Addr     string
	LameDuck time.Duration
}

// Register declares -pprof and -lameduck on fs (flag.CommandLine when
// nil).
func (d *DebugFlags) Register(fs *flag.FlagSet) {
	if fs == nil {
		fs = flag.CommandLine
	}
	fs.StringVar(&d.Addr, "pprof", "",
		"serve pprof, /trace, /healthz and /readyz on this address (off when empty)")
	fs.DurationVar(&d.LameDuck, "lameduck", 0,
		"pause between flipping /readyz not-ready and starting the drain")
}

// Install applies the lame-duck option and, when -pprof is set, registers
// the debug server as the supervisor's first component (so it outlives
// the drain and keeps serving /readyz). Call before any other Add. It
// returns the server (nil when -pprof is off).
func (d *DebugFlags) Install(sup *Supervisor, rec *trace.Recorder) *DebugServer {
	if d.LameDuck > 0 {
		WithLameDuck(d.LameDuck)(sup)
	}
	if d.Addr == "" {
		return nil
	}
	ds := NewDebugServer(d.Addr, DebugMux(rec, sup))
	sup.Add("debug-server", ds)
	return ds
}
