package runtime

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"sync/atomic"

	"neesgrid/internal/trace"
)

// HealthzHandler serves liveness: 200 "ok" while the process and its
// started components are healthy, 503 with the aggregated error text
// otherwise. Liveness stays 200 during a graceful drain — a draining
// process is doing exactly what it should and must not be killed for it.
func (s *Supervisor) HealthzHandler() http.Handler {
	return probeHandler(s.Healthy)
}

// ReadyzHandler serves readiness: 503 until every component is up, 200
// while serving, and 503 again the moment drain begins — before any
// listener closes, so an orchestrator routing on /readyz stops sending
// traffic ahead of the connection resets.
func (s *Supervisor) ReadyzHandler() http.Handler {
	return probeHandler(s.Ready)
}

func probeHandler(probe func() error) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "GET only", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if err := probe(); err != nil {
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprintf(w, "%v\n", err)
			return
		}
		fmt.Fprintln(w, "ok")
	})
}

// RegisterProbes mounts the supervisor's /healthz and /readyz handlers on
// an existing mux — for daemons whose primary API listener should answer
// probes directly (fleetd serves them beside /fleet and /metrics) instead
// of requiring a separate -pprof side listener.
func (s *Supervisor) RegisterProbes(mux *http.ServeMux) {
	mux.Handle("/healthz", s.HealthzHandler())
	mux.Handle("/readyz", s.ReadyzHandler())
}

// DebugMux extends the trace/pprof debug mux every daemon serves behind
// its -pprof flag with the supervisor's /healthz and /readyz probes: one
// side listener carries profiles, spans, liveness and readiness.
func DebugMux(rec *trace.Recorder, sup *Supervisor) *http.ServeMux {
	mux := trace.DebugMux(rec)
	if sup != nil {
		mux.Handle("/healthz", sup.HealthzHandler())
		mux.Handle("/readyz", sup.ReadyzHandler())
	}
	return mux
}

// DebugServer is the probe/profile side listener as a Component. Register
// it first: components stop in reverse order, so the first-registered
// server is the last stopped and /readyz keeps answering 503 for the
// whole drain.
type DebugServer struct {
	addr    string
	handler http.Handler

	bound   atomic.Value // string
	serving atomic.Bool
	srv     *http.Server
	ln      net.Listener
}

// NewDebugServer creates a debug server for addr (e.g. "127.0.0.1:6060";
// port 0 picks a free one, readable from Addr after Start).
func NewDebugServer(addr string, handler http.Handler) *DebugServer {
	return &DebugServer{addr: addr, handler: handler}
}

// Addr returns the bound address once started ("" before).
func (d *DebugServer) Addr() string {
	if a, ok := d.bound.Load().(string); ok {
		return a
	}
	return ""
}

// Start binds the listener and serves in the background.
func (d *DebugServer) Start(ctx context.Context) error {
	ln, err := net.Listen("tcp", d.addr)
	if err != nil {
		return fmt.Errorf("debug listener %s: %w", d.addr, err)
	}
	d.ln = ln
	d.bound.Store(ln.Addr().String())
	d.srv = &http.Server{Handler: d.handler}
	d.serving.Store(true)
	go func() { _ = d.srv.Serve(ln) }()
	return nil
}

// Stop shuts the server down within ctx.
func (d *DebugServer) Stop(ctx context.Context) error {
	if d.srv == nil {
		return nil
	}
	d.serving.Store(false)
	return d.srv.Shutdown(ctx)
}

// Healthy reports whether the listener is up.
func (d *DebugServer) Healthy() error {
	if !d.serving.Load() {
		return fmt.Errorf("debug server not serving")
	}
	return nil
}
