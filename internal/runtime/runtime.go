// Package runtime is the shared service-lifecycle layer every daemon and
// harness in this repository runs on. The paper's central operational
// lesson (§3.4) is that a multi-site hybrid experiment lives or dies on
// service robustness — the public MOST run ended at step 1493 because one
// endpoint could not ride out a network event. This package is the
// reproduction's answer on the lifecycle side: components declare an
// explicit Start/Stop/Healthy contract, a Supervisor starts them in
// dependency order and drains them in reverse under per-component
// deadlines, SIGINT/SIGTERM translate into exactly one cancellation, and
// liveness/readiness are observable at /healthz and /readyz on the debug
// mux so an external orchestrator (or the CI shutdown smoke) can watch a
// process come up and drain.
package runtime

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"
)

// Component is one supervised unit of a process: a listener, a server, a
// background feed, a rig daemon. Start must return once the component is
// usable (or failed); Stop must release everything Start acquired,
// honouring ctx as its drain deadline; Healthy reports nil while the
// component is able to do its job.
type Component interface {
	Start(ctx context.Context) error
	Stop(ctx context.Context) error
	Healthy() error
}

// Funcs adapts plain functions to the Component contract. Nil fields are
// no-ops (a nil HealthyFunc reports healthy), so already-running resources
// can join a supervisor with only their teardown declared.
type Funcs struct {
	StartFunc   func(ctx context.Context) error
	StopFunc    func(ctx context.Context) error
	HealthyFunc func() error
}

// Start runs StartFunc when set.
func (f Funcs) Start(ctx context.Context) error {
	if f.StartFunc == nil {
		return nil
	}
	return f.StartFunc(ctx)
}

// Stop runs StopFunc when set.
func (f Funcs) Stop(ctx context.Context) error {
	if f.StopFunc == nil {
		return nil
	}
	return f.StopFunc(ctx)
}

// Healthy runs HealthyFunc when set.
func (f Funcs) Healthy() error {
	if f.HealthyFunc == nil {
		return nil
	}
	return f.HealthyFunc()
}

// StopFunc wraps a context-free teardown (the shape of the old ad-hoc
// cleanup slices) as a Component. The wrapped function runs exactly once
// however many times Stop is invoked.
func StopFunc(stop func()) Component {
	var once sync.Once
	return Funcs{StopFunc: func(context.Context) error {
		once.Do(stop)
		return nil
	}}
}

// StopErrFunc is StopFunc for teardowns that report an error.
func StopErrFunc(stop func() error) Component {
	var (
		once sync.Once
		err  error
	)
	return Funcs{StopFunc: func(context.Context) error {
		once.Do(func() { err = stop() })
		return err
	}}
}

// DefaultDrain is the per-component stop deadline when neither the
// supervisor nor the component declares one. Two seconds is long enough
// for an in-flight NTCP execute against an emulated rig and short enough
// that `kill -TERM` feels immediate at the console.
const DefaultDrain = 2 * time.Second

// Supervisor state machine. States only move forward.
const (
	stateNew = iota
	stateStarting
	stateReady
	stateDraining
	stateStopped
	stateFailed
)

func stateName(s int) string {
	switch s {
	case stateNew:
		return "new"
	case stateStarting:
		return "starting"
	case stateReady:
		return "ready"
	case stateDraining:
		return "draining"
	case stateStopped:
		return "stopped"
	case stateFailed:
		return "failed"
	default:
		return fmt.Sprintf("state(%d)", s)
	}
}

type managed struct {
	name    string
	c       Component
	drain   time.Duration
	started bool
}

// Supervisor owns an ordered set of components: Start brings them up in
// declared (dependency) order, Stop drains them in reverse with a
// per-component deadline, and Ready/Healthy expose the aggregate state
// for the /readyz and /healthz probes. A Supervisor is itself a
// Component, so harness topologies compose as supervised trees (an
// Experiment supervises Sites; each Site supervises its container, NTCP
// server, rig daemon and hub).
type Supervisor struct {
	name         string
	defaultDrain time.Duration
	lameDuck     time.Duration
	logf         func(format string, args ...any)

	mu      sync.Mutex
	comps   []*managed
	state   int
	stopErr error
}

// Option configures a Supervisor.
type Option func(*Supervisor)

// WithDefaultDrain sets the per-component stop deadline used when a
// component does not declare its own.
func WithDefaultDrain(d time.Duration) Option {
	return func(s *Supervisor) {
		if d > 0 {
			s.defaultDrain = d
		}
	}
}

// WithLameDuck makes Stop pause after flipping readiness (so /readyz
// serves 503) before the first component is stopped — the lame-duck
// window that lets load balancers and probes observe the drain before
// the listeners start closing.
func WithLameDuck(d time.Duration) Option {
	return func(s *Supervisor) {
		if d > 0 {
			s.lameDuck = d
		}
	}
}

// WithLogf routes the supervisor's progress lines (component started,
// drain begun, stop errors) to f; the default discards them.
func WithLogf(f func(format string, args ...any)) Option {
	return func(s *Supervisor) {
		if f != nil {
			s.logf = f
		}
	}
}

// NewSupervisor creates an empty supervisor named for its process or
// subsystem (the name prefixes log lines and error messages).
func NewSupervisor(name string, opts ...Option) *Supervisor {
	s := &Supervisor{
		name:         name,
		defaultDrain: DefaultDrain,
		logf:         func(string, ...any) {},
	}
	for _, o := range opts {
		o(s)
	}
	return s
}

// CompOption configures one component registration.
type CompOption func(*managed)

// WithDrain overrides the component's stop deadline.
func WithDrain(d time.Duration) CompOption {
	return func(m *managed) {
		if d > 0 {
			m.drain = d
		}
	}
}

// Add registers a component. Components start in registration order and
// stop in reverse, so dependencies register before their dependents
// (listener before the service that needs it; the debug/probe server
// first of all, so it outlives the drain and keeps answering /readyz).
// Add panics after Start — the component set is fixed at boot, which is
// what makes the stop order trustworthy.
func (s *Supervisor) Add(name string, c Component, opts ...CompOption) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.state != stateNew {
		panic(fmt.Sprintf("runtime: %s: Add(%q) after Start", s.name, name))
	}
	m := &managed{name: name, c: c, drain: s.defaultDrain}
	for _, o := range opts {
		o(m)
	}
	s.comps = append(s.comps, m)
}

// AddFuncs registers a Funcs adapter in one call.
func (s *Supervisor) AddFuncs(name string, f Funcs, opts ...CompOption) {
	s.Add(name, f, opts...)
}

// Adopt registers a component that is already running — the harness
// pattern, where sites start their rig daemons and containers inline
// while building the topology. The component joins the stop order
// immediately (Stop will reach it even if Start is never called); a
// later Start skips it.
func (s *Supervisor) Adopt(name string, c Component, opts ...CompOption) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.state != stateNew {
		panic(fmt.Sprintf("runtime: %s: Adopt(%q) after Start", s.name, name))
	}
	m := &managed{name: name, c: c, drain: s.defaultDrain, started: true}
	for _, o := range opts {
		o(m)
	}
	s.comps = append(s.comps, m)
}

// Start brings every component up in declared order. On the first
// failure it stops the components already started (in reverse, best
// effort) and returns the failing component's error; the supervisor is
// then failed and cannot be restarted.
func (s *Supervisor) Start(ctx context.Context) error {
	s.mu.Lock()
	if s.state != stateNew {
		st := s.state
		s.mu.Unlock()
		return fmt.Errorf("runtime: %s: Start in state %s", s.name, stateName(st))
	}
	s.state = stateStarting
	comps := s.comps
	s.mu.Unlock()

	for i, m := range comps {
		if m.started {
			continue // adopted while already running
		}
		if err := ctx.Err(); err != nil {
			werr := fmt.Errorf("runtime: %s: start aborted: %w", s.name, err)
			s.failStart(werr)
			return werr
		}
		if err := m.c.Start(ctx); err != nil {
			werr := fmt.Errorf("runtime: %s: start %s: %w", s.name, m.name, err)
			s.failStart(werr)
			return werr
		}
		s.mu.Lock()
		m.started = true
		s.mu.Unlock()
		s.logf("%s: started %s (%d/%d)", s.name, m.name, i+1, len(comps))
	}
	s.mu.Lock()
	s.state = stateReady
	s.mu.Unlock()
	return nil
}

// failStart rolls back the components already started when a start
// failed.
func (s *Supervisor) failStart(cause error) {
	s.mu.Lock()
	s.state = stateFailed
	s.stopErr = cause
	comps := s.comps
	s.mu.Unlock()
	for j := len(comps) - 1; j >= 0; j-- {
		m := comps[j]
		if !m.started {
			continue
		}
		sctx, cancel := context.WithTimeout(context.Background(), m.drain)
		if err := m.c.Stop(sctx); err != nil {
			s.logf("%s: rollback stop %s: %v", s.name, m.name, err)
		}
		cancel()
	}
}

// Stop drains the started components in reverse order. Readiness flips to
// not-ready before anything else happens (then the lame-duck pause, if
// configured, gives probes a chance to see it). Each component gets its
// own drain deadline — the tighter of its declared drain and whatever
// remains of ctx. Errors are joined, logged, and returned; a second Stop
// returns the first run's result.
func (s *Supervisor) Stop(ctx context.Context) error {
	s.mu.Lock()
	switch s.state {
	case stateDraining:
		// A concurrent Stop is underway; nothing sensible to wait on
		// without holding the lock, so report that.
		s.mu.Unlock()
		return fmt.Errorf("runtime: %s: already draining", s.name)
	case stateStopped, stateFailed:
		err := s.stopErr
		s.mu.Unlock()
		return err
	}
	s.state = stateDraining // /readyz flips to 503 from here on
	comps := s.comps
	s.mu.Unlock()

	if s.lameDuck > 0 {
		s.logf("%s: draining (lame-duck %s)", s.name, s.lameDuck)
		select {
		case <-time.After(s.lameDuck):
		case <-ctx.Done():
		}
	} else {
		s.logf("%s: draining", s.name)
	}

	var errs []error
	for i := len(comps) - 1; i >= 0; i-- {
		m := comps[i]
		if !m.started {
			continue
		}
		sctx, cancel := context.WithTimeout(contextOrBackground(ctx), m.drain)
		err := m.c.Stop(sctx)
		cancel()
		if err != nil {
			err = fmt.Errorf("stop %s: %w", m.name, err)
			s.logf("%s: %v", s.name, err)
			errs = append(errs, err)
		} else {
			s.logf("%s: stopped %s", s.name, m.name)
		}
	}
	err := errors.Join(errs...)
	if err != nil {
		err = fmt.Errorf("runtime: %s: %w", s.name, err)
	}
	s.mu.Lock()
	s.state = stateStopped
	s.stopErr = err
	s.mu.Unlock()
	return err
}

// contextOrBackground shields component drains from an already-cancelled
// parent: a SIGTERM cancels the run context, but the teardown that
// follows still deserves its per-component deadline rather than an
// instantly-expired one.
func contextOrBackground(ctx context.Context) context.Context {
	if ctx == nil || ctx.Err() != nil {
		return context.Background()
	}
	return ctx
}

// StopBudget is the total wall-clock Stop may need: the lame-duck pause
// plus every started component's drain deadline, with a little margin.
// Main uses it to bound the shutdown path.
func (s *Supervisor) StopBudget() time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	budget := s.lameDuck + time.Second
	for _, m := range s.comps {
		if m.started {
			budget += m.drain
		}
	}
	return budget
}

// Ready reports nil once every component is up, and an error naming the
// current state otherwise. It flips non-nil the moment drain begins —
// the /readyz contract.
func (s *Supervisor) Ready() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.state == stateReady {
		return nil
	}
	up := 0
	for _, m := range s.comps {
		if m.started {
			up++
		}
	}
	return fmt.Errorf("runtime: %s not ready: %s (%d/%d components up)",
		s.name, stateName(s.state), up, len(s.comps))
}

// Healthy aggregates the started components' health. It reports nil
// while the process is live and every started component is healthy —
// including during drain, when the process is alive and working as
// intended (that is readiness's job to report, not liveness's). A failed
// start or a component reporting an error makes it non-nil.
func (s *Supervisor) Healthy() error {
	s.mu.Lock()
	state := s.state
	comps := make([]*managed, 0, len(s.comps))
	for _, m := range s.comps {
		if m.started {
			comps = append(comps, m)
		}
	}
	s.mu.Unlock()
	if state == stateFailed {
		return fmt.Errorf("runtime: %s failed to start", s.name)
	}
	if state == stateDraining || state == stateStopped {
		// Components are mid-teardown; probing them would report noise.
		return nil
	}
	var errs []error
	for _, m := range comps {
		if err := m.c.Healthy(); err != nil {
			errs = append(errs, fmt.Errorf("%s: %w", m.name, err))
		}
	}
	if err := errors.Join(errs...); err != nil {
		return fmt.Errorf("runtime: %s unhealthy: %w", s.name, err)
	}
	return nil
}

// Run is the daemon main loop: Start, then wait for ctx to be cancelled
// (the signal handler's job), then Stop under the supervisor's own
// budget. The returned error is the start failure or the joined stop
// errors.
func (s *Supervisor) Run(ctx context.Context) error {
	if err := s.Start(ctx); err != nil {
		return err
	}
	<-ctx.Done()
	stopCtx, cancel := context.WithTimeout(context.Background(), s.StopBudget())
	defer cancel()
	return s.Stop(stopCtx)
}
