package runtime

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// recorder logs lifecycle calls so tests can assert ordering.
type recorder struct {
	mu    sync.Mutex
	calls []string
}

func (r *recorder) log(s string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.calls = append(r.calls, s)
}

func (r *recorder) got() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]string(nil), r.calls...)
}

func (r *recorder) comp(name string, startErr, stopErr error) Component {
	return Funcs{
		StartFunc: func(context.Context) error {
			r.log("start:" + name)
			return startErr
		},
		StopFunc: func(context.Context) error {
			r.log("stop:" + name)
			return stopErr
		},
	}
}

func TestStartOrderAndReverseStop(t *testing.T) {
	rec := &recorder{}
	sup := NewSupervisor("test")
	sup.Add("a", rec.comp("a", nil, nil))
	sup.Add("b", rec.comp("b", nil, nil))
	sup.Add("c", rec.comp("c", nil, nil))

	if err := sup.Ready(); err == nil {
		t.Fatal("Ready should be non-nil before Start")
	}
	if err := sup.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := sup.Ready(); err != nil {
		t.Fatalf("Ready after Start: %v", err)
	}
	if err := sup.Stop(context.Background()); err != nil {
		t.Fatal(err)
	}
	want := []string{"start:a", "start:b", "start:c", "stop:c", "stop:b", "stop:a"}
	if got := rec.got(); !equal(got, want) {
		t.Fatalf("order = %v, want %v", got, want)
	}
	if err := sup.Ready(); err == nil {
		t.Fatal("Ready should be non-nil after Stop")
	}
}

func TestStartFailureRollsBackStartedComponents(t *testing.T) {
	rec := &recorder{}
	sup := NewSupervisor("test")
	sup.Add("a", rec.comp("a", nil, nil))
	sup.Add("b", rec.comp("b", errors.New("boom"), nil))
	sup.Add("c", rec.comp("c", nil, nil))

	err := sup.Start(context.Background())
	if err == nil || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("Start error = %v, want boom", err)
	}
	// a started and must be rolled back; b failed; c never started.
	want := []string{"start:a", "start:b", "stop:a"}
	if got := rec.got(); !equal(got, want) {
		t.Fatalf("order = %v, want %v", got, want)
	}
	if err := sup.Healthy(); err == nil {
		t.Fatal("Healthy should report the failed start")
	}
	// Stop after a failed start returns the recorded cause, not a new drain.
	if err := sup.Stop(context.Background()); err == nil {
		t.Fatal("Stop after failed start should return the failure")
	}
}

func TestStopIsIdempotent(t *testing.T) {
	rec := &recorder{}
	sup := NewSupervisor("test")
	stopErr := errors.New("drain failed")
	sup.Add("a", rec.comp("a", nil, stopErr))
	if err := sup.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	err1 := sup.Stop(context.Background())
	err2 := sup.Stop(context.Background())
	if err1 == nil || err2 == nil {
		t.Fatal("both Stops should report the drain error")
	}
	if err1.Error() != err2.Error() {
		t.Fatalf("second Stop returned a different error: %v vs %v", err1, err2)
	}
	if got := rec.got(); len(got) != 2 { // start:a stop:a — stop ran once
		t.Fatalf("calls = %v, want one start and one stop", got)
	}
}

func TestAdoptJoinsStopOrderWithoutStart(t *testing.T) {
	rec := &recorder{}
	sup := NewSupervisor("test")
	sup.Add("added", rec.comp("added", nil, nil))
	sup.Adopt("adopted", rec.comp("adopted", nil, nil))
	if err := sup.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := sup.Stop(context.Background()); err != nil {
		t.Fatal(err)
	}
	// adopted never gets Start; it stops first (registered last).
	want := []string{"start:added", "stop:adopted", "stop:added"}
	if got := rec.got(); !equal(got, want) {
		t.Fatalf("order = %v, want %v", got, want)
	}
}

func TestStopWithoutStartDrainsAdopted(t *testing.T) {
	// The harness pattern: everything adopted already-running, Stop called
	// on a supervisor that never Started.
	rec := &recorder{}
	sup := NewSupervisor("test")
	sup.Adopt("x", rec.comp("x", nil, nil))
	sup.Adopt("y", rec.comp("y", nil, nil))
	if err := sup.Stop(context.Background()); err != nil {
		t.Fatal(err)
	}
	want := []string{"stop:y", "stop:x"}
	if got := rec.got(); !equal(got, want) {
		t.Fatalf("order = %v, want %v", got, want)
	}
}

func TestDrainDeadlineBoundsSlowComponent(t *testing.T) {
	sup := NewSupervisor("test")
	sup.Add("slow", Funcs{
		StopFunc: func(ctx context.Context) error {
			<-ctx.Done() // honours the deadline
			return ctx.Err()
		},
	}, WithDrain(30*time.Millisecond))
	if err := sup.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	err := sup.Stop(context.Background())
	if err == nil {
		t.Fatal("slow component's deadline error should propagate")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("Stop took %s; drain deadline did not bound it", elapsed)
	}
}

func TestStopShieldsDrainFromCancelledParent(t *testing.T) {
	// A SIGTERM cancels the run context before Stop is called; components
	// still deserve their drain window.
	drained := false
	sup := NewSupervisor("test")
	sup.Add("c", Funcs{
		StopFunc: func(ctx context.Context) error {
			select {
			case <-time.After(10 * time.Millisecond):
				drained = true
				return nil
			case <-ctx.Done():
				return ctx.Err()
			}
		},
	})
	if err := sup.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	if err := sup.Stop(cancelled); err != nil {
		t.Fatalf("Stop under cancelled parent: %v", err)
	}
	if !drained {
		t.Fatal("component was not given its drain window")
	}
}

func TestNestedSupervisors(t *testing.T) {
	rec := &recorder{}
	inner := NewSupervisor("inner")
	inner.Add("i1", rec.comp("i1", nil, nil))
	outer := NewSupervisor("outer")
	outer.Add("o1", rec.comp("o1", nil, nil))
	outer.Add("inner", inner)
	if err := outer.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := inner.Ready(); err != nil {
		t.Fatalf("inner should be ready once outer started it: %v", err)
	}
	if err := outer.Stop(context.Background()); err != nil {
		t.Fatal(err)
	}
	want := []string{"start:o1", "start:i1", "stop:i1", "stop:o1"}
	if got := rec.got(); !equal(got, want) {
		t.Fatalf("order = %v, want %v", got, want)
	}
}

func TestHealthyAggregatesComponents(t *testing.T) {
	sick := errors.New("rig fault")
	var failing error
	sup := NewSupervisor("test")
	sup.Add("ok", Funcs{})
	sup.Add("rig", Funcs{HealthyFunc: func() error { return failing }})
	if err := sup.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := sup.Healthy(); err != nil {
		t.Fatalf("Healthy with healthy components: %v", err)
	}
	failing = sick
	err := sup.Healthy()
	if err == nil || !strings.Contains(err.Error(), "rig fault") {
		t.Fatalf("Healthy = %v, want rig fault", err)
	}
	// During drain liveness stays nil — readiness reports the drain.
	failing = nil
	if err := sup.Stop(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := sup.Healthy(); err != nil {
		t.Fatalf("Healthy after clean Stop: %v", err)
	}
}

func TestProbeHandlers(t *testing.T) {
	sup := NewSupervisor("test")
	block := make(chan struct{})
	sup.Add("c", Funcs{
		StopFunc: func(context.Context) error {
			<-block
			return nil
		},
	})

	get := func(h http.Handler) int {
		rw := httptest.NewRecorder()
		h.ServeHTTP(rw, httptest.NewRequest("GET", "/", nil))
		return rw.Code
	}

	// Before start: alive, not ready.
	if code := get(sup.HealthzHandler()); code != http.StatusOK {
		t.Fatalf("healthz before start = %d", code)
	}
	if code := get(sup.ReadyzHandler()); code != http.StatusServiceUnavailable {
		t.Fatalf("readyz before start = %d", code)
	}
	if err := sup.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	if code := get(sup.ReadyzHandler()); code != http.StatusOK {
		t.Fatalf("readyz after start = %d", code)
	}

	// Readiness must flip 503 the moment drain begins — while the stop is
	// still in flight.
	done := make(chan error, 1)
	go func() { done <- sup.Stop(context.Background()) }()
	deadline := time.After(2 * time.Second)
	for get(sup.ReadyzHandler()) != http.StatusServiceUnavailable {
		select {
		case <-deadline:
			t.Fatal("readyz never flipped to 503 during drain")
		case <-time.After(time.Millisecond):
		}
	}
	if code := get(sup.HealthzHandler()); code != http.StatusOK {
		t.Fatalf("healthz during drain = %d, want 200 (liveness is not readiness)", code)
	}
	close(block)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	// POST is rejected — probes are GET-only.
	rw := httptest.NewRecorder()
	sup.HealthzHandler().ServeHTTP(rw, httptest.NewRequest("POST", "/", nil))
	if rw.Code != http.StatusMethodNotAllowed {
		t.Fatalf("POST healthz = %d", rw.Code)
	}
}

func TestRunStopsOnContextCancel(t *testing.T) {
	rec := &recorder{}
	sup := NewSupervisor("test")
	sup.Add("a", rec.comp("a", nil, nil))
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- sup.Run(ctx) }()
	// Wait for start, then cancel — Run must drain and return.
	deadline := time.After(2 * time.Second)
	for sup.Ready() != nil {
		select {
		case <-deadline:
			t.Fatal("supervisor never became ready")
		case <-time.After(time.Millisecond):
		}
	}
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Run did not return after cancel")
	}
	want := []string{"start:a", "stop:a"}
	if got := rec.got(); !equal(got, want) {
		t.Fatalf("order = %v, want %v", got, want)
	}
}

func TestLameDuckDelaysDrain(t *testing.T) {
	sup := NewSupervisor("test", WithLameDuck(50*time.Millisecond))
	var stoppedAt time.Time
	sup.Add("c", Funcs{StopFunc: func(context.Context) error {
		stoppedAt = time.Now()
		return nil
	}})
	if err := sup.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if err := sup.Stop(context.Background()); err != nil {
		t.Fatal(err)
	}
	if d := stoppedAt.Sub(start); d < 40*time.Millisecond {
		t.Fatalf("component stopped %s after Stop; lame-duck window not honoured", d)
	}
	if budget := sup.StopBudget(); budget < 50*time.Millisecond {
		t.Fatalf("StopBudget %s does not include the lame-duck window", budget)
	}
}

func TestStopFuncRunsOnce(t *testing.T) {
	n := 0
	c := StopFunc(func() { n++ })
	_ = c.Stop(context.Background())
	_ = c.Stop(context.Background())
	if n != 1 {
		t.Fatalf("stop ran %d times, want 1", n)
	}
	e := errors.New("once")
	calls := 0
	ce := StopErrFunc(func() error { calls++; return e })
	if err := ce.Stop(context.Background()); err != e {
		t.Fatalf("first StopErrFunc = %v", err)
	}
	if err := ce.Stop(context.Background()); err != e {
		t.Fatalf("second StopErrFunc should replay the error, got %v", err)
	}
	if calls != 1 {
		t.Fatalf("stop ran %d times, want 1", calls)
	}
}

func TestAddAfterStartPanics(t *testing.T) {
	sup := NewSupervisor("test")
	if err := sup.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Add after Start should panic")
		}
	}()
	sup.Add("late", Funcs{})
}

func TestDebugServerServesProbes(t *testing.T) {
	sup := NewSupervisor("test")
	ds := NewDebugServer("127.0.0.1:0", DebugMux(nil, sup))
	sup.Add("debug-server", ds)
	sup.Add("x", Funcs{})
	if err := sup.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	defer sup.Stop(context.Background())
	resp, err := http.Get(fmt.Sprintf("http://%s/readyz", ds.Addr()))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("readyz over HTTP = %d", resp.StatusCode)
	}
	if err := ds.Healthy(); err != nil {
		t.Fatalf("debug server Healthy: %v", err)
	}
}

func equal(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
