package structural

import (
	"fmt"
	"math"
)

// Element models the restoring-force behaviour of one structural component
// (a column, a beam, a brace) in a single degree of freedom. In a
// pseudo-dynamic test the integrator imposes a displacement and the element
// (physical or numerical) reports the restoring force it develops; elements
// therefore expose exactly that contract.
//
// Elements are stateful: hysteretic models remember their loading history.
// Restore(d) advances the state to displacement d and returns the force.
// Peek(d) returns the force the element would develop at d without
// committing the state change (used for trial/corrector integrator steps and
// for proposal-time policy checks).
type Element interface {
	// Restore advances the element to displacement d (meters) and returns
	// the restoring force (newtons).
	Restore(d float64) float64
	// Peek returns the force at displacement d without mutating state.
	Peek(d float64) float64
	// Stiffness returns the current tangent stiffness (N/m).
	Stiffness() float64
	// InitialStiffness returns the elastic stiffness (N/m), used to build
	// the initial-stiffness matrix required by the α-OS integrator.
	InitialStiffness() float64
	// Reset returns the element to its virgin state.
	Reset()
}

// LinearElastic is a spring with constant stiffness K. The numerical middle
// frame of MOST was modelled as linear elastic.
type LinearElastic struct {
	K float64 // stiffness, N/m
	d float64
}

// NewLinearElastic returns a linear spring with stiffness k (N/m).
func NewLinearElastic(k float64) *LinearElastic {
	if k <= 0 {
		panic(fmt.Sprintf("structural: non-positive stiffness %g", k))
	}
	return &LinearElastic{K: k}
}

func (e *LinearElastic) Restore(d float64) float64 { e.d = d; return e.K * d }
func (e *LinearElastic) Peek(d float64) float64    { return e.K * d }
func (e *LinearElastic) Stiffness() float64        { return e.K }
func (e *LinearElastic) InitialStiffness() float64 { return e.K }
func (e *LinearElastic) Reset()                    { e.d = 0 }

// Bilinear is an elastic–plastic element with kinematic hardening: elastic
// stiffness K0 up to yield force Fy, post-yield stiffness Alpha*K0. It
// produces the parallelogram hysteresis loops characteristic of steel
// columns like the MOST specimens (and of the Fig. 8 hysteresis viewers).
type Bilinear struct {
	K0    float64 // elastic stiffness, N/m
	Fy    float64 // yield force, N
	Alpha float64 // hardening ratio (0..1)

	d  float64 // current displacement
	f  float64 // current force
	kt float64 // current tangent stiffness
}

// NewBilinear constructs a bilinear hysteretic element.
func NewBilinear(k0, fy, alpha float64) *Bilinear {
	if k0 <= 0 || fy <= 0 || alpha < 0 || alpha >= 1 {
		panic(fmt.Sprintf("structural: invalid bilinear params k0=%g fy=%g alpha=%g", k0, fy, alpha))
	}
	return &Bilinear{K0: k0, Fy: fy, Alpha: alpha, kt: k0}
}

// step computes the next (force, tangent) from state (d0, f0) to displacement d.
func (e *Bilinear) step(d0, f0, d float64) (f, kt float64) {
	// Elastic trial.
	df := e.K0 * (d - d0)
	ft := f0 + df
	// Yield surface translated by kinematic hardening: |f - alpha*K0*d| <= (1-alpha)*Fy.
	back := e.Alpha * e.K0 * d
	bound := (1 - e.Alpha) * e.Fy
	switch {
	case ft-back > bound:
		return back + bound, e.Alpha * e.K0
	case ft-back < -bound:
		return back - bound, e.Alpha * e.K0
	default:
		return ft, e.K0
	}
}

func (e *Bilinear) Restore(d float64) float64 {
	f, kt := e.step(e.d, e.f, d)
	e.d, e.f, e.kt = d, f, kt
	return f
}

func (e *Bilinear) Peek(d float64) float64 {
	f, _ := e.step(e.d, e.f, d)
	return f
}

func (e *Bilinear) Stiffness() float64        { return e.kt }
func (e *Bilinear) InitialStiffness() float64 { return e.K0 }
func (e *Bilinear) Reset()                    { e.d, e.f, e.kt = 0, 0, e.K0 }

// BoucWen is a smooth hysteretic element following the Bouc–Wen model:
//
//	f = alpha*k0*d + (1-alpha)*k0*z
//	dz/dd = A - [beta*sign(z*dd) + gamma] * |z|^n
//
// It is integrated across each displacement increment with sub-stepping for
// stability. Bouc–Wen loops are smoother than bilinear ones and are widely
// used to model test specimens in hybrid simulation.
type BoucWen struct {
	K0    float64
	Alpha float64
	Beta  float64
	Gamma float64
	N     float64
	Dy    float64 // yield displacement scale for z normalization

	d, z float64
}

// NewBoucWen constructs a Bouc–Wen element. dy is the yield-displacement
// scale; beta+gamma should be positive for softening loops.
func NewBoucWen(k0, alpha, beta, gamma, n, dy float64) *BoucWen {
	if k0 <= 0 || dy <= 0 || n < 1 {
		panic(fmt.Sprintf("structural: invalid BoucWen params k0=%g dy=%g n=%g", k0, dy, n))
	}
	return &BoucWen{K0: k0, Alpha: alpha, Beta: beta, Gamma: gamma, N: n, Dy: dy}
}

// advance integrates the z evolution from displacement d0 to d, returning
// the updated z.
func (e *BoucWen) advance(d0, z, d float64) float64 {
	dd := d - d0
	if dd == 0 {
		return z
	}
	const sub = 20
	h := dd / sub
	for i := 0; i < sub; i++ {
		zn := math.Pow(math.Abs(z), e.N)
		s := 1.0
		if z*h < 0 {
			s = -1
		}
		dz := (1 - (e.Beta*s+e.Gamma)*zn) * h / e.Dy
		z += dz
	}
	// z is dimensionless, bounded by ((beta+gamma))^(-1/n) in steady cycling.
	return z
}

func (e *BoucWen) force(d, z float64) float64 {
	return e.Alpha*e.K0*d + (1-e.Alpha)*e.K0*e.Dy*z
}

func (e *BoucWen) Restore(d float64) float64 {
	e.z = e.advance(e.d, e.z, d)
	e.d = d
	return e.force(d, e.z)
}

func (e *BoucWen) Peek(d float64) float64 {
	z := e.advance(e.d, e.z, d)
	return e.force(d, z)
}

func (e *BoucWen) Stiffness() float64 {
	// Finite-difference tangent around the current state.
	const eps = 1e-9
	f1 := e.Peek(e.d + eps)
	f0 := e.force(e.d, e.z)
	return (f1 - f0) / eps
}

func (e *BoucWen) InitialStiffness() float64 { return e.K0 }
func (e *BoucWen) Reset()                    { e.d, e.z = 0, 0 }

// CantileverColumnStiffness returns the lateral stiffness of a cantilever
// column of Young's modulus E (Pa), second moment of area I (m⁴), and
// height L (m): 3EI/L³. The MOST left and right columns were cantilevers
// (beam-column pin connection), so this is the elastic stiffness used for
// their emulated specimens.
func CantileverColumnStiffness(e, i, l float64) float64 {
	return 3 * e * i / (l * l * l)
}

// FixedFixedColumnStiffness returns 12EI/L³, the lateral stiffness of a
// column fixed against rotation at both ends.
func FixedFixedColumnStiffness(e, i, l float64) float64 {
	return 12 * e * i / (l * l * l)
}
