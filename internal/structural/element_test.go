package structural

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestLinearElastic(t *testing.T) {
	e := NewLinearElastic(100)
	if f := e.Restore(0.5); f != 50 {
		t.Fatalf("Restore(0.5) = %g, want 50", f)
	}
	if f := e.Peek(-0.1); !almostEq(f, -10, 1e-15) {
		t.Fatalf("Peek(-0.1) = %g, want -10", f)
	}
	if e.Stiffness() != 100 || e.InitialStiffness() != 100 {
		t.Fatal("stiffness mismatch")
	}
}

func TestBilinearElasticRange(t *testing.T) {
	e := NewBilinear(1000, 10, 0.1) // yields at d = 0.01
	if f := e.Restore(0.005); !almostEq(f, 5, 1e-12) {
		t.Fatalf("pre-yield force = %g, want 5", f)
	}
	if e.Stiffness() != 1000 {
		t.Fatalf("pre-yield tangent = %g, want 1000", e.Stiffness())
	}
}

func TestBilinearYield(t *testing.T) {
	e := NewBilinear(1000, 10, 0.1)
	f := e.Restore(0.02) // twice the yield displacement
	// Post-yield: f = alpha*k*d + (1-alpha)*Fy = 0.1*1000*0.02 + 0.9*10 = 11.
	if !almostEq(f, 11, 1e-12) {
		t.Fatalf("post-yield force = %g, want 11", f)
	}
	if !almostEq(e.Stiffness(), 100, 1e-12) {
		t.Fatalf("post-yield tangent = %g, want 100", e.Stiffness())
	}
}

func TestBilinearUnloadingIsElastic(t *testing.T) {
	e := NewBilinear(1000, 10, 0.1)
	fTop := e.Restore(0.02)
	fBack := e.Restore(0.019) // small unload: elastic slope
	if !almostEq(fTop-fBack, 1000*0.001, 1e-9) {
		t.Fatalf("unloading slope wrong: df = %g", fTop-fBack)
	}
	if e.Stiffness() != 1000 {
		t.Fatalf("unloading tangent = %g, want 1000", e.Stiffness())
	}
}

func TestBilinearPeekDoesNotMutate(t *testing.T) {
	e := NewBilinear(1000, 10, 0.1)
	e.Restore(0.005)
	p := e.Peek(0.03)
	f := e.Restore(0.005) // unchanged state: same force as before
	if !almostEq(f, 5, 1e-12) {
		t.Fatalf("Peek mutated state: Restore(0.005) = %g after Peek", f)
	}
	if p <= f {
		t.Fatalf("Peek(0.03) = %g should exceed Restore(0.005) = %g", p, f)
	}
}

func TestBilinearHysteresisDissipatesEnergy(t *testing.T) {
	e := NewBilinear(1000, 10, 0.05)
	// One full cycle well past yield.
	amp := 0.05
	var energy float64
	prevD, prevF := 0.0, 0.0
	for i := 1; i <= 400; i++ {
		d := amp * math.Sin(2*math.Pi*float64(i)/400)
		f := e.Restore(d)
		energy += (f + prevF) / 2 * (d - prevD)
		prevD, prevF = d, f
	}
	if energy <= 0 {
		t.Fatalf("cyclic energy = %g, want positive dissipation", energy)
	}
}

func TestBilinearReset(t *testing.T) {
	e := NewBilinear(1000, 10, 0.1)
	e.Restore(0.05)
	e.Reset()
	if f := e.Restore(0.005); !almostEq(f, 5, 1e-12) {
		t.Fatalf("after Reset, Restore(0.005) = %g, want 5", f)
	}
}

// Property: bilinear force never exceeds the hardening envelope
// |f| <= alpha*k*|d| + (1-alpha)*Fy.
func TestBilinearForceBoundedProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e := NewBilinear(1000, 10, 0.1)
		d := 0.0
		for i := 0; i < 200; i++ {
			d += rng.NormFloat64() * 0.01
			fr := e.Restore(d)
			bound := 0.1*1000*math.Abs(d) + 0.9*10 + 1e-9
			if math.Abs(fr) > bound {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestBoucWenSmallAmplitudeIsElastic(t *testing.T) {
	e := NewBoucWen(1000, 0.1, 0.5, 0.5, 2, 0.01)
	f := e.Restore(1e-6)
	if !almostEq(f, 1000*1e-6, 1e-7) {
		t.Fatalf("small-amplitude force = %g, want ~%g", f, 1000*1e-6)
	}
}

func TestBoucWenHysteresisLoop(t *testing.T) {
	e := NewBoucWen(1000, 0.1, 0.5, 0.5, 2, 0.01)
	var energy float64
	prevD, prevF := 0.0, 0.0
	for i := 1; i <= 800; i++ {
		d := 0.05 * math.Sin(2*math.Pi*float64(i)/400)
		f := e.Restore(d)
		energy += (f + prevF) / 2 * (d - prevD)
		prevD, prevF = d, f
	}
	if energy <= 0 {
		t.Fatalf("Bouc-Wen cyclic energy = %g, want positive", energy)
	}
}

func TestBoucWenZBounded(t *testing.T) {
	e := NewBoucWen(1000, 0.1, 0.5, 0.5, 2, 0.01)
	for i := 0; i < 2000; i++ {
		e.Restore(0.1 * math.Sin(float64(i)*0.1))
	}
	// Steady-state |z| bound is (1/(beta+gamma))^(1/n) = 1 here.
	if math.Abs(e.z) > 1.01 {
		t.Fatalf("z = %g escaped its bound", e.z)
	}
}

func TestBoucWenPeekDoesNotMutate(t *testing.T) {
	e := NewBoucWen(1000, 0.1, 0.5, 0.5, 2, 0.01)
	e.Restore(0.02)
	before := e.z
	e.Peek(0.05)
	if e.z != before {
		t.Fatal("Peek mutated Bouc-Wen state")
	}
}

func TestColumnStiffnessFormulas(t *testing.T) {
	k3 := CantileverColumnStiffness(200e9, 2e-5, 2.5)
	if !almostEq(k3, 3*200e9*2e-5/(2.5*2.5*2.5), 1e-6) {
		t.Fatalf("cantilever stiffness = %g", k3)
	}
	k12 := FixedFixedColumnStiffness(200e9, 2e-5, 2.5)
	if !almostEq(k12, 4*k3, 1e-6) {
		t.Fatalf("fixed-fixed should be 4x cantilever, got %g vs %g", k12, k3)
	}
}

func TestInvalidElementParamsPanic(t *testing.T) {
	cases := []func(){
		func() { NewLinearElastic(0) },
		func() { NewBilinear(0, 1, 0.1) },
		func() { NewBilinear(1, 0, 0.1) },
		func() { NewBilinear(1, 1, 1.0) },
		func() { NewBoucWen(0, 0.1, 0.5, 0.5, 2, 0.01) },
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("case %d: expected panic", i)
				}
			}()
			fn()
		}()
	}
}
