package structural

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// History accumulates the per-step response of a run: the raw material for
// the Fig. 8 data viewers (time histories and hysteresis plots).
type History struct {
	NDOF   int
	States []State
}

// NewHistory returns an empty history for an n-DOF model, pre-sizing for
// steps entries.
func NewHistory(n, steps int) *History {
	return &History{NDOF: n, States: make([]State, 0, steps+1)}
}

// Record appends a state (already deep-copied by the integrators).
func (h *History) Record(s State) { h.States = append(h.States, s) }

// Len returns the number of recorded states.
func (h *History) Len() int { return len(h.States) }

// Displacement returns the displacement time series of one DOF.
func (h *History) Displacement(dof int) []float64 {
	out := make([]float64, len(h.States))
	for i, s := range h.States {
		out[i] = s.D[dof]
	}
	return out
}

// Force returns the restoring-force time series of one DOF.
func (h *History) Force(dof int) []float64 {
	out := make([]float64, len(h.States))
	for i, s := range h.States {
		out[i] = s.F[dof]
	}
	return out
}

// Times returns the time axis.
func (h *History) Times() []float64 {
	out := make([]float64, len(h.States))
	for i, s := range h.States {
		out[i] = s.T
	}
	return out
}

// PeakDisplacement returns the maximum |d| seen at a DOF.
func (h *History) PeakDisplacement(dof int) float64 {
	peak := 0.0
	for _, s := range h.States {
		if v := s.D[dof]; v > peak {
			peak = v
		} else if -v > peak {
			peak = -v
		}
	}
	return peak
}

// PeakForce returns the maximum |f| seen at a DOF.
func (h *History) PeakForce(dof int) float64 {
	peak := 0.0
	for _, s := range h.States {
		if v := s.F[dof]; v > peak {
			peak = v
		} else if -v > peak {
			peak = -v
		}
	}
	return peak
}

// HystereticEnergy returns the energy dissipated at a DOF, computed as the
// trapezoidal work integral ∮ f·dd over the recorded loop. For a purely
// linear elastic response that returns to the origin this is ~0; hysteretic
// elements dissipate positive energy — a property test target.
func (h *History) HystereticEnergy(dof int) float64 {
	e := 0.0
	for i := 1; i < len(h.States); i++ {
		dd := h.States[i].D[dof] - h.States[i-1].D[dof]
		fm := (h.States[i].F[dof] + h.States[i-1].F[dof]) / 2
		e += fm * dd
	}
	return e
}

// WriteCSV emits step,t,d0..dN,f0..fN rows — the series behind the Fig. 8
// time-history and hysteresis viewers.
func (h *History) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	head := []string{"step", "t"}
	for i := 0; i < h.NDOF; i++ {
		head = append(head, fmt.Sprintf("d%d", i))
	}
	for i := 0; i < h.NDOF; i++ {
		head = append(head, fmt.Sprintf("f%d", i))
	}
	if err := cw.Write(head); err != nil {
		return err
	}
	row := make([]string, 0, len(head))
	for _, s := range h.States {
		row = row[:0]
		row = append(row, strconv.Itoa(s.Step), strconv.FormatFloat(s.T, 'g', -1, 64))
		for _, v := range s.D {
			row = append(row, strconv.FormatFloat(v, 'g', -1, 64))
		}
		for _, v := range s.F {
			row = append(row, strconv.FormatFloat(v, 'g', -1, 64))
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// RunOptions configures a local (non-distributed) pseudo-dynamic run.
type RunOptions struct {
	Dt    float64
	Steps int
	// Ground is the ground-acceleration record üg(step); step 0 is the
	// initial condition.
	Ground func(step int) float64
	// Iota is the influence vector; defaults to ones.
	Iota []float64
	// OnStep, if non-nil, observes each committed state.
	OnStep func(State)
}

// Run integrates the system through opts.Steps steps and returns the full
// history. This is the single-process reference path; the distributed MOST
// run replaces sys.R with NTCP transactions but reuses the same integrators,
// so local and distributed trajectories can be compared bit-for-bit when the
// rigs are noise-free.
func Run(sys *System, in Integrator, opts RunOptions) (*History, error) {
	if opts.Dt <= 0 || opts.Steps <= 0 {
		return nil, fmt.Errorf("structural: run needs positive dt and steps")
	}
	if opts.Ground == nil {
		return nil, fmt.Errorf("structural: run needs a ground motion")
	}
	n := sys.M.Rows
	iota := opts.Iota
	if iota == nil {
		iota = Ones(n)
	}
	d0 := make([]float64, n)
	v0 := make([]float64, n)
	st, err := in.Init(sys, opts.Dt, d0, v0, GroundLoad(sys.M, iota, opts.Ground(0)))
	if err != nil {
		return nil, err
	}
	h := NewHistory(n, opts.Steps)
	h.Record(st)
	if opts.OnStep != nil {
		opts.OnStep(st)
	}
	for s := 1; s <= opts.Steps; s++ {
		st, err = in.Step(GroundLoad(sys.M, iota, opts.Ground(s)))
		if err != nil {
			return h, fmt.Errorf("structural: step %d: %w", s, err)
		}
		h.Record(st)
		if opts.OnStep != nil {
			opts.OnStep(st)
		}
	}
	return h, nil
}
