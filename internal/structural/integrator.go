package structural

import (
	"fmt"
	"math"
)

// RestoringFunc imposes a displacement vector on the (possibly distributed)
// structure and returns the measured restoring forces. In a local run this
// is Assembly.Restore; in a distributed run the MS-PSDS coordinator supplies
// a function that issues NTCP transactions to every site.
type RestoringFunc func(d []float64) ([]float64, error)

// System is the equation of motion M·a + C·v + R(d) = p(t) in pseudo-dynamic
// form: M and C are numerical, R is imposed/measured.
type System struct {
	M *Matrix       // mass matrix
	C *Matrix       // viscous damping matrix (may be nil for undamped)
	K *Matrix       // initial stiffness matrix (required by AlphaOS, else optional)
	R RestoringFunc // restoring force via imposed displacements
}

func (s *System) validate() error {
	if s.M == nil || s.M.Rows != s.M.Cols {
		return fmt.Errorf("structural: system needs a square mass matrix")
	}
	n := s.M.Rows
	if s.C != nil && (s.C.Rows != n || s.C.Cols != n) {
		return fmt.Errorf("structural: damping matrix shape mismatch")
	}
	if s.K != nil && (s.K.Rows != n || s.K.Cols != n) {
		return fmt.Errorf("structural: stiffness matrix shape mismatch")
	}
	if s.R == nil {
		return fmt.Errorf("structural: system needs a restoring function")
	}
	return nil
}

func (s *System) damping() *Matrix {
	if s.C != nil {
		return s.C
	}
	return NewMatrix(s.M.Rows, s.M.Cols)
}

// State is the integrator output at one time step.
type State struct {
	Step int
	T    float64
	D    []float64 // displacement imposed this step
	V    []float64 // velocity
	A    []float64 // acceleration
	F    []float64 // measured restoring force
}

func cloneState(s State) State {
	c := s
	c.D = append([]float64(nil), s.D...)
	c.V = append([]float64(nil), s.V...)
	c.A = append([]float64(nil), s.A...)
	c.F = append([]float64(nil), s.F...)
	return c
}

// Integrator advances the hybrid equation of motion one step at a time.
// Implementations are explicit (pseudo-dynamic tests cannot iterate on a
// physical specimen within one step).
type Integrator interface {
	// Init establishes the initial state with external load p0.
	Init(sys *System, dt float64, d0, v0, p0 []float64) (State, error)
	// Step advances to t_{n+1} with external load p at t_{n+1}.
	Step(p []float64) (State, error)
	// Name identifies the scheme (for experiment metadata).
	Name() string
}

// ---------------------------------------------------------------------------
// Explicit Newmark (β = 0, γ = ½) — the central-difference family used in
// classical pseudo-dynamic testing.
// ---------------------------------------------------------------------------

// ExplicitNewmark implements Newmark-β with β = 0, γ = ½: displacement at
// the next step is fully determined by the current state, so the target
// displacement can be imposed on the (possibly remote) substructures before
// the forces are measured — the defining requirement of a PSD test.
type ExplicitNewmark struct {
	sys  *System
	dt   float64
	n    int
	mhat *Matrix // M + dt/2 C, factored per step via Solve
	st   State
}

// NewExplicitNewmark returns an explicit Newmark integrator.
func NewExplicitNewmark() *ExplicitNewmark { return &ExplicitNewmark{} }

func (in *ExplicitNewmark) Name() string { return "explicit-newmark" }

func (in *ExplicitNewmark) Init(sys *System, dt float64, d0, v0, p0 []float64) (State, error) {
	if err := sys.validate(); err != nil {
		return State{}, err
	}
	if dt <= 0 {
		return State{}, fmt.Errorf("structural: non-positive dt %g", dt)
	}
	n := sys.M.Rows
	if len(d0) != n || len(v0) != n || len(p0) != n {
		return State{}, fmt.Errorf("structural: initial condition length mismatch (want %d)", n)
	}
	in.sys, in.dt, in.n = sys, dt, n
	in.mhat = sys.M.Clone().AddMatrix(sys.damping(), dt/2)

	f0, err := sys.R(d0)
	if err != nil {
		return State{}, fmt.Errorf("structural: initial restore: %w", err)
	}
	// M a0 = p0 - C v0 - f0
	rhs := make([]float64, n)
	cv := sys.damping().MulVec(v0)
	for i := 0; i < n; i++ {
		rhs[i] = p0[i] - cv[i] - f0[i]
	}
	a0, err := sys.M.Solve(rhs)
	if err != nil {
		return State{}, fmt.Errorf("structural: initial acceleration: %w", err)
	}
	in.st = State{Step: 0, T: 0,
		D: append([]float64(nil), d0...),
		V: append([]float64(nil), v0...),
		A: a0, F: f0}
	return cloneState(in.st), nil
}

func (in *ExplicitNewmark) Step(p []float64) (State, error) {
	if in.sys == nil {
		return State{}, fmt.Errorf("structural: integrator not initialized")
	}
	if len(p) != in.n {
		return State{}, fmt.Errorf("structural: load length %d != %d", len(p), in.n)
	}
	dt := in.dt
	cur := in.st

	// Target displacement (β = 0): d_{n+1} = d_n + dt v_n + dt²/2 a_n.
	d1 := make([]float64, in.n)
	for i := 0; i < in.n; i++ {
		d1[i] = cur.D[i] + dt*cur.V[i] + dt*dt/2*cur.A[i]
	}
	f1, err := in.sys.R(d1)
	if err != nil {
		return State{}, err
	}
	// Predictor velocity ṽ = v_n + dt/2 a_n; (M + dt/2 C) a_{n+1} = p - f1 - C ṽ.
	vp := make([]float64, in.n)
	for i := 0; i < in.n; i++ {
		vp[i] = cur.V[i] + dt/2*cur.A[i]
	}
	cvp := in.sys.damping().MulVec(vp)
	rhs := make([]float64, in.n)
	for i := 0; i < in.n; i++ {
		rhs[i] = p[i] - f1[i] - cvp[i]
	}
	a1, err := in.mhat.Solve(rhs)
	if err != nil {
		return State{}, err
	}
	v1 := make([]float64, in.n)
	for i := 0; i < in.n; i++ {
		v1[i] = vp[i] + dt/2*a1[i]
	}
	in.st = State{Step: cur.Step + 1, T: cur.T + dt, D: d1, V: v1, A: a1, F: f1}
	return cloneState(in.st), nil
}

// ---------------------------------------------------------------------------
// α-OS — the HHT-α operator-splitting scheme used for MOST-class hybrid
// tests: unconditionally stable for linear substructures, explicit in the
// imposed displacement (only the predictor displacement reaches the rig).
// ---------------------------------------------------------------------------

// AlphaOS implements the α operator-splitting method (Combescure & Pegon).
// alpha ∈ [-1/3, 0]; alpha = 0 reduces to the OS-Newmark average-acceleration
// scheme. The measured force at the predictor displacement is corrected with
// the initial-stiffness term K·(d_{n+1} − d̃_{n+1}), which never requires
// re-imposing a displacement on the physical specimen.
type AlphaOS struct {
	Alpha float64

	sys         *System
	dt          float64
	n           int
	beta, gamma float64
	mhat        *Matrix
	st          State
	ftilde      []float64 // measured force at predictor of current state
	dtilde      []float64 // predictor displacement of current state
	pPrev       []float64
}

// NewAlphaOS returns an α-OS integrator; alpha must lie in [-1/3, 0].
func NewAlphaOS(alpha float64) (*AlphaOS, error) {
	if alpha < -1.0/3 || alpha > 0 {
		return nil, fmt.Errorf("structural: alpha %g outside [-1/3, 0]", alpha)
	}
	return &AlphaOS{Alpha: alpha}, nil
}

func (in *AlphaOS) Name() string { return fmt.Sprintf("alpha-os(%.3g)", in.Alpha) }

func (in *AlphaOS) Init(sys *System, dt float64, d0, v0, p0 []float64) (State, error) {
	if err := sys.validate(); err != nil {
		return State{}, err
	}
	if sys.K == nil {
		return State{}, fmt.Errorf("structural: alpha-OS requires the initial stiffness matrix")
	}
	if dt <= 0 {
		return State{}, fmt.Errorf("structural: non-positive dt %g", dt)
	}
	n := sys.M.Rows
	if len(d0) != n || len(v0) != n || len(p0) != n {
		return State{}, fmt.Errorf("structural: initial condition length mismatch (want %d)", n)
	}
	in.sys, in.dt, in.n = sys, dt, n
	in.beta = (1 - in.Alpha) * (1 - in.Alpha) / 4
	in.gamma = 0.5 - in.Alpha

	// M̂ = M + (1+α)γΔt·C + (1+α)βΔt²·K
	in.mhat = sys.M.Clone().
		AddMatrix(sys.damping(), (1+in.Alpha)*in.gamma*dt).
		AddMatrix(sys.K, (1+in.Alpha)*in.beta*dt*dt)

	f0, err := sys.R(d0)
	if err != nil {
		return State{}, fmt.Errorf("structural: initial restore: %w", err)
	}
	cv := sys.damping().MulVec(v0)
	rhs := make([]float64, n)
	for i := 0; i < n; i++ {
		rhs[i] = p0[i] - cv[i] - f0[i]
	}
	a0, err := sys.M.Solve(rhs)
	if err != nil {
		return State{}, fmt.Errorf("structural: initial acceleration: %w", err)
	}
	in.st = State{Step: 0, T: 0,
		D: append([]float64(nil), d0...),
		V: append([]float64(nil), v0...),
		A: a0, F: f0}
	in.ftilde = append([]float64(nil), f0...)
	in.dtilde = append([]float64(nil), d0...)
	in.pPrev = append([]float64(nil), p0...)
	return cloneState(in.st), nil
}

func (in *AlphaOS) Step(p []float64) (State, error) {
	if in.sys == nil {
		return State{}, fmt.Errorf("structural: integrator not initialized")
	}
	if len(p) != in.n {
		return State{}, fmt.Errorf("structural: load length %d != %d", len(p), in.n)
	}
	dt, n := in.dt, in.n
	cur := in.st
	a, g, b := in.Alpha, in.gamma, in.beta

	// Predictors.
	dp := make([]float64, n)
	vp := make([]float64, n)
	for i := 0; i < n; i++ {
		dp[i] = cur.D[i] + dt*cur.V[i] + dt*dt*(0.5-b)*cur.A[i]
		vp[i] = cur.V[i] + dt*(1-g)*cur.A[i]
	}
	// Impose predictor displacement; measure force.
	fp, err := in.sys.R(dp)
	if err != nil {
		return State{}, err
	}

	// Equilibrium at weighted time:
	// M a₁ + (1+α)(C v₁ + r₁) − α(C v₀ + r₀) = (1+α)p₁ − α p₀
	// r₁ = f̃₁ + K(d₁ − d̃₁) = f̃₁ + K β dt² a₁, v₁ = ṽ₁ + γ dt a₁.
	cvp := in.sys.damping().MulVec(vp)
	cv0 := in.sys.damping().MulVec(cur.V)
	// r₀ at the corrected d₀ is f̃₀ + K(d₀ − d̃₀).
	r0 := make([]float64, n)
	kd0 := in.sys.K.MulVec(VecAdd(cur.D, in.dtilde, -1))
	for i := 0; i < n; i++ {
		r0[i] = in.ftilde[i] + kd0[i]
	}
	rhs := make([]float64, n)
	for i := 0; i < n; i++ {
		rhs[i] = (1+a)*p[i] - a*in.pPrev[i] - (1+a)*(cvp[i]+fp[i]) + a*(cv0[i]+r0[i])
	}
	a1, err := in.mhat.Solve(rhs)
	if err != nil {
		return State{}, err
	}
	d1 := make([]float64, n)
	v1 := make([]float64, n)
	for i := 0; i < n; i++ {
		d1[i] = dp[i] + b*dt*dt*a1[i]
		v1[i] = vp[i] + g*dt*a1[i]
	}
	in.st = State{Step: cur.Step + 1, T: cur.T + dt, D: d1, V: v1, A: a1, F: fp}
	in.ftilde = fp
	in.dtilde = dp
	in.pPrev = append(in.pPrev[:0], p...)
	return cloneState(in.st), nil
}

// ---------------------------------------------------------------------------
// Helpers
// ---------------------------------------------------------------------------

// GroundLoad converts a ground acceleration üg into the effective load
// vector p = −M·ι·üg, with ι the influence vector (1 for every DOF excited
// by horizontal ground motion).
func GroundLoad(m *Matrix, iota []float64, ag float64) []float64 {
	p := m.MulVec(iota)
	for i := range p {
		p[i] *= -ag
	}
	return p
}

// Ones returns an n-vector of ones (the usual influence vector).
func Ones(n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = 1
	}
	return v
}

// RayleighDamping returns C = a0·M + a1·K with coefficients chosen to give
// damping ratio zeta at circular frequencies w1 and w2.
func RayleighDamping(m, k *Matrix, zeta, w1, w2 float64) *Matrix {
	a0 := zeta * 2 * w1 * w2 / (w1 + w2)
	a1 := zeta * 2 / (w1 + w2)
	return m.Clone().Scale(a0).AddMatrix(k, a1)
}

// StableDt returns the central-difference stability limit 2/ω_max estimated
// from the (diagonal) mass and initial stiffness: Δt < 2/√(k/m) per DOF.
func StableDt(m, k *Matrix) float64 {
	limit := math.Inf(1)
	for i := 0; i < m.Rows; i++ {
		mi, ki := m.At(i, i), k.At(i, i)
		if mi <= 0 || ki <= 0 {
			continue
		}
		if dt := 2 / math.Sqrt(ki/mi); dt < limit {
			limit = dt
		}
	}
	return limit
}
