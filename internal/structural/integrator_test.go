package structural

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// sdofSystem builds a linear single-DOF system m=1, k, zeta viscous damping.
func sdofSystem(k, zeta float64) *System {
	m := Diagonal([]float64{1})
	kk := Diagonal([]float64{k})
	el := NewLinearElastic(k)
	var c *Matrix
	if zeta > 0 {
		w := math.Sqrt(k)
		c = Diagonal([]float64{2 * zeta * w})
	}
	return &System{M: m, C: c, K: kk, R: func(d []float64) ([]float64, error) {
		return []float64{el.Restore(d[0])}, nil
	}}
}

// freeVibration integrates free vibration from d0=1, v0=0 and compares the
// trajectory with the analytic damped-cosine solution.
func freeVibration(t *testing.T, in Integrator, k, zeta, dt float64, steps int, tol float64) {
	t.Helper()
	sys := sdofSystem(k, zeta)
	st, err := in.Init(sys, dt, []float64{1}, []float64{0}, []float64{0})
	if err != nil {
		t.Fatal(err)
	}
	w := math.Sqrt(k)
	wd := w * math.Sqrt(1-zeta*zeta)
	maxErr := 0.0
	for s := 1; s <= steps; s++ {
		st, err = in.Step([]float64{0})
		if err != nil {
			t.Fatal(err)
		}
		tm := st.T
		exact := math.Exp(-zeta*w*tm) * (math.Cos(wd*tm) + zeta*w/wd*math.Sin(wd*tm))
		if e := math.Abs(st.D[0] - exact); e > maxErr {
			maxErr = e
		}
	}
	if maxErr > tol {
		t.Fatalf("%s: max displacement error %g > %g", in.Name(), maxErr, tol)
	}
}

func TestExplicitNewmarkFreeVibration(t *testing.T) {
	// w = 2*pi (T = 1 s), dt = T/200 -> tight agreement expected.
	k := 4 * math.Pi * math.Pi
	freeVibration(t, NewExplicitNewmark(), k, 0, 0.005, 400, 2e-3)
}

func TestExplicitNewmarkDampedFreeVibration(t *testing.T) {
	k := 4 * math.Pi * math.Pi
	freeVibration(t, NewExplicitNewmark(), k, 0.05, 0.005, 400, 2e-3)
}

func TestAlphaOSFreeVibration(t *testing.T) {
	k := 4 * math.Pi * math.Pi
	in, err := NewAlphaOS(-0.05)
	if err != nil {
		t.Fatal(err)
	}
	freeVibration(t, in, k, 0.02, 0.005, 400, 5e-3)
}

func TestAlphaOSZeroAlphaFreeVibration(t *testing.T) {
	k := 4 * math.Pi * math.Pi
	in, err := NewAlphaOS(0)
	if err != nil {
		t.Fatal(err)
	}
	freeVibration(t, in, k, 0, 0.005, 400, 5e-3)
}

func TestAlphaOSRejectsBadAlpha(t *testing.T) {
	if _, err := NewAlphaOS(-0.5); err == nil {
		t.Fatal("alpha = -0.5 should be rejected")
	}
	if _, err := NewAlphaOS(0.1); err == nil {
		t.Fatal("alpha = 0.1 should be rejected")
	}
}

func TestAlphaOSRequiresStiffness(t *testing.T) {
	in, _ := NewAlphaOS(-0.1)
	sys := sdofSystem(10, 0)
	sys.K = nil
	if _, err := in.Init(sys, 0.01, []float64{0}, []float64{0}, []float64{0}); err == nil {
		t.Fatal("expected error without initial stiffness")
	}
}

func TestExplicitNewmarkStabilityLimit(t *testing.T) {
	// Past the central-difference stability limit dt > 2/w the explicit
	// scheme must blow up; just inside it must stay bounded.
	k := 100.0 // w = 10, limit dt = 0.2
	grow := func(dt float64, steps int) float64 {
		sys := sdofSystem(k, 0)
		in := NewExplicitNewmark()
		st, err := in.Init(sys, dt, []float64{1}, []float64{0}, []float64{0})
		if err != nil {
			t.Fatal(err)
		}
		peak := 0.0
		for s := 0; s < steps; s++ {
			st, err = in.Step([]float64{0})
			if err != nil {
				t.Fatal(err)
			}
			if a := math.Abs(st.D[0]); a > peak {
				peak = a
			}
		}
		return peak
	}
	if p := grow(0.19, 500); p > 2 {
		t.Fatalf("inside stability limit: peak %g should stay ~1", p)
	}
	if p := grow(0.21, 500); p < 100 {
		t.Fatalf("outside stability limit: peak %g should diverge", p)
	}
}

func TestAlphaOSStableBeyondExplicitLimit(t *testing.T) {
	// alpha-OS with linear substructures is unconditionally stable: run at
	// 3x the central-difference limit and stay bounded.
	k := 100.0
	in, _ := NewAlphaOS(-0.1)
	sys := sdofSystem(k, 0)
	st, err := in.Init(sys, 0.6, []float64{1}, []float64{0}, []float64{0})
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < 500; s++ {
		st, err = in.Step([]float64{0})
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(st.D[0]) > 5 {
			t.Fatalf("alpha-OS diverged at step %d: d = %g", s, st.D[0])
		}
	}
}

func TestStepBeforeInitFails(t *testing.T) {
	if _, err := NewExplicitNewmark().Step([]float64{0}); err == nil {
		t.Fatal("expected error stepping uninitialized integrator")
	}
	in, _ := NewAlphaOS(0)
	if _, err := in.Step([]float64{0}); err == nil {
		t.Fatal("expected error stepping uninitialized alpha-OS")
	}
}

func TestInitValidation(t *testing.T) {
	in := NewExplicitNewmark()
	sys := sdofSystem(10, 0)
	if _, err := in.Init(sys, -0.01, []float64{0}, []float64{0}, []float64{0}); err == nil {
		t.Fatal("negative dt should fail")
	}
	if _, err := in.Init(sys, 0.01, []float64{0, 0}, []float64{0}, []float64{0}); err == nil {
		t.Fatal("dimension mismatch should fail")
	}
	bad := &System{M: Diagonal([]float64{1})}
	if _, err := in.Init(bad, 0.01, []float64{0}, []float64{0}, []float64{0}); err == nil {
		t.Fatal("missing restoring function should fail")
	}
}

func TestGroundLoad(t *testing.T) {
	m := Diagonal([]float64{2, 3})
	p := GroundLoad(m, Ones(2), 1.5)
	if p[0] != -3 || p[1] != -4.5 {
		t.Fatalf("GroundLoad = %v, want [-3 -4.5]", p)
	}
}

func TestRayleighDamping(t *testing.T) {
	m := Diagonal([]float64{1})
	k := Diagonal([]float64{100}) // w = 10
	c := RayleighDamping(m, k, 0.05, 10, 10)
	// At w1 = w2 = w the ratio is exactly zeta: c = 2*zeta*w*m.
	if !almostEq(c.At(0, 0), 2*0.05*10, 1e-12) {
		t.Fatalf("Rayleigh c = %g, want 1", c.At(0, 0))
	}
}

func TestStableDt(t *testing.T) {
	m := Diagonal([]float64{1, 1})
	k := Diagonal([]float64{100, 400}) // w = 10, 20 -> limit 0.1
	if got := StableDt(m, k); !almostEq(got, 0.1, 1e-12) {
		t.Fatalf("StableDt = %g, want 0.1", got)
	}
}

func TestTwoDOFFreeVibrationModal(t *testing.T) {
	// Two equal masses in a chain: k between ground-m1 and m1-m2.
	// Mode shapes are known; verify the symmetric mode frequency.
	k := 100.0
	kmat := NewMatrix(2, 2)
	kmat.Set(0, 0, 2*k)
	kmat.Set(0, 1, -k)
	kmat.Set(1, 0, -k)
	kmat.Set(1, 1, k)
	m := Diagonal([]float64{1, 1})
	sys := &System{M: m, K: kmat, R: func(d []float64) ([]float64, error) {
		return kmat.MulVec(d), nil
	}}
	in := NewExplicitNewmark()
	// First mode of the 2-DOF shear chain: w1^2 = k*(3-sqrt(5))/2.
	w1 := math.Sqrt(k * (3 - math.Sqrt(5)) / 2)
	phi := []float64{1, (3 + math.Sqrt(5)) / 2 * (2.0 / (3 + math.Sqrt(5)))} // recomputed below
	// Mode shape: (2k - w^2) x1 = k x2 -> x2/x1 = (2k - w1^2)/k.
	phi = []float64{1, (2*k - w1*w1) / k}
	st, err := in.Init(sys, 0.002, phi, []float64{0, 0}, []float64{0, 0})
	if err != nil {
		t.Fatal(err)
	}
	maxErr := 0.0
	for s := 1; s <= 1000; s++ {
		st, err = in.Step([]float64{0, 0})
		if err != nil {
			t.Fatal(err)
		}
		exact0 := phi[0] * math.Cos(w1*st.T)
		if e := math.Abs(st.D[0] - exact0); e > maxErr {
			maxErr = e
		}
	}
	if maxErr > 5e-3 {
		t.Fatalf("modal trajectory error %g", maxErr)
	}
}

// Property: undamped elastic free vibration conserves total mechanical
// energy (kinetic + strain) to within integrator tolerance over hundreds of
// steps, for random stiffness and initial conditions.
func TestEnergyConservationProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := 10 + rng.Float64()*500
		d0 := (rng.Float64() - 0.5) * 0.2
		v0 := (rng.Float64() - 0.5) * 2
		if math.Abs(d0) < 1e-6 && math.Abs(v0) < 1e-6 {
			return true
		}
		w := math.Sqrt(k)
		dt := 0.02 / w // well inside stability
		sys := sdofSystem(k, 0)
		in := NewExplicitNewmark()
		st, err := in.Init(sys, dt, []float64{d0}, []float64{v0}, []float64{0})
		if err != nil {
			return false
		}
		e0 := 0.5*st.V[0]*st.V[0] + 0.5*k*st.D[0]*st.D[0]
		for s := 0; s < 400; s++ {
			st, err = in.Step([]float64{0})
			if err != nil {
				return false
			}
			e := 0.5*st.V[0]*st.V[0] + 0.5*k*st.D[0]*st.D[0]
			if math.Abs(e-e0) > 0.02*e0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: with viscous damping and no load, energy never increases.
func TestDampedEnergyMonotoneProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := 10 + rng.Float64()*500
		zeta := 0.01 + rng.Float64()*0.2
		w := math.Sqrt(k)
		dt := 0.02 / w
		sys := sdofSystem(k, zeta)
		in := NewExplicitNewmark()
		st, err := in.Init(sys, dt, []float64{0.1}, []float64{0}, []float64{0})
		if err != nil {
			return false
		}
		prev := 0.5*st.V[0]*st.V[0] + 0.5*k*st.D[0]*st.D[0]
		for s := 0; s < 300; s++ {
			st, err = in.Step([]float64{0})
			if err != nil {
				return false
			}
			e := 0.5*st.V[0]*st.V[0] + 0.5*k*st.D[0]*st.D[0]
			if e > prev*(1+1e-6) {
				return false
			}
			prev = e
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
