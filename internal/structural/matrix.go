// Package structural implements the structural-dynamics substrate used by
// the MS-PSDS (Multi-Site Pseudo-dynamic Substructure) method of the MOST
// experiment: element models with hysteresis, mass/damping assembly, explicit
// time integrators, and substructure decomposition.
//
// The package is deliberately self-contained linear algebra over small dense
// matrices (experiments in the paper have a handful of degrees of freedom),
// so it has no dependencies outside the standard library.
package structural

import (
	"errors"
	"fmt"
	"math"
)

// Matrix is a small dense row-major matrix. The structural models in MOST
// have very few degrees of freedom (the test frame reduces to 1-4 story
// DOFs), so a simple dense representation is both adequate and fast.
type Matrix struct {
	Rows, Cols int
	Data       []float64
}

// NewMatrix returns a zeroed rows×cols matrix.
func NewMatrix(rows, cols int) *Matrix {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("structural: invalid matrix shape %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Matrix {
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// Diagonal returns a square matrix with the given diagonal entries.
func Diagonal(diag []float64) *Matrix {
	m := NewMatrix(len(diag), len(diag))
	for i, v := range diag {
		m.Set(i, i, v)
	}
	return m
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Add accumulates v into element (i, j).
func (m *Matrix) Add(i, j int, v float64) { m.Data[i*m.Cols+j] += v }

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// Scale multiplies every element by s and returns m for chaining.
func (m *Matrix) Scale(s float64) *Matrix {
	for i := range m.Data {
		m.Data[i] *= s
	}
	return m
}

// AddMatrix accumulates s*other into m. Shapes must match.
func (m *Matrix) AddMatrix(other *Matrix, s float64) *Matrix {
	if m.Rows != other.Rows || m.Cols != other.Cols {
		panic("structural: AddMatrix shape mismatch")
	}
	for i := range m.Data {
		m.Data[i] += s * other.Data[i]
	}
	return m
}

// MulVec computes m·v into a fresh slice.
func (m *Matrix) MulVec(v []float64) []float64 {
	if len(v) != m.Cols {
		panic("structural: MulVec dimension mismatch")
	}
	out := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		s := 0.0
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		for j, rv := range row {
			s += rv * v[j]
		}
		out[i] = s
	}
	return out
}

// Mul returns the matrix product m·other.
func (m *Matrix) Mul(other *Matrix) *Matrix {
	if m.Cols != other.Rows {
		panic("structural: Mul dimension mismatch")
	}
	out := NewMatrix(m.Rows, other.Cols)
	for i := 0; i < m.Rows; i++ {
		for k := 0; k < m.Cols; k++ {
			a := m.At(i, k)
			if a == 0 {
				continue
			}
			for j := 0; j < other.Cols; j++ {
				out.Add(i, j, a*other.At(k, j))
			}
		}
	}
	return out
}

// ErrSingular is returned when a solve encounters a (numerically) singular
// coefficient matrix.
var ErrSingular = errors.New("structural: singular matrix")

// Solve solves m·x = b by Gaussian elimination with partial pivoting.
// m is not modified.
func (m *Matrix) Solve(b []float64) ([]float64, error) {
	if m.Rows != m.Cols {
		return nil, fmt.Errorf("structural: Solve requires square matrix, got %dx%d", m.Rows, m.Cols)
	}
	if len(b) != m.Rows {
		return nil, fmt.Errorf("structural: Solve rhs length %d != %d", len(b), m.Rows)
	}
	n := m.Rows
	a := m.Clone()
	x := make([]float64, n)
	copy(x, b)

	for col := 0; col < n; col++ {
		// Partial pivot.
		pivot := col
		maxAbs := math.Abs(a.At(col, col))
		for r := col + 1; r < n; r++ {
			if abs := math.Abs(a.At(r, col)); abs > maxAbs {
				maxAbs, pivot = abs, r
			}
		}
		if maxAbs < 1e-300 {
			return nil, ErrSingular
		}
		if pivot != col {
			for j := 0; j < n; j++ {
				a.Data[col*n+j], a.Data[pivot*n+j] = a.Data[pivot*n+j], a.Data[col*n+j]
			}
			x[col], x[pivot] = x[pivot], x[col]
		}
		inv := 1 / a.At(col, col)
		for r := col + 1; r < n; r++ {
			f := a.At(r, col) * inv
			if f == 0 {
				continue
			}
			for j := col; j < n; j++ {
				a.Add(r, j, -f*a.At(col, j))
			}
			x[r] -= f * x[col]
		}
	}
	for i := n - 1; i >= 0; i-- {
		s := x[i]
		for j := i + 1; j < n; j++ {
			s -= a.At(i, j) * x[j]
		}
		x[i] = s / a.At(i, i)
	}
	return x, nil
}

// Inverse returns m⁻¹ computed column-by-column via Solve.
func (m *Matrix) Inverse() (*Matrix, error) {
	if m.Rows != m.Cols {
		return nil, fmt.Errorf("structural: Inverse requires square matrix")
	}
	n := m.Rows
	inv := NewMatrix(n, n)
	e := make([]float64, n)
	for j := 0; j < n; j++ {
		for i := range e {
			e[i] = 0
		}
		e[j] = 1
		col, err := m.Solve(e)
		if err != nil {
			return nil, err
		}
		for i := 0; i < n; i++ {
			inv.Set(i, j, col[i])
		}
	}
	return inv, nil
}

// VecAdd returns a + s*b.
func VecAdd(a []float64, b []float64, s float64) []float64 {
	if len(a) != len(b) {
		panic("structural: VecAdd length mismatch")
	}
	out := make([]float64, len(a))
	for i := range a {
		out[i] = a[i] + s*b[i]
	}
	return out
}

// VecScale returns s*a.
func VecScale(a []float64, s float64) []float64 {
	out := make([]float64, len(a))
	for i := range a {
		out[i] = s * a[i]
	}
	return out
}

// VecNorm returns the Euclidean norm of a.
func VecNorm(a []float64) float64 {
	s := 0.0
	for _, v := range a {
		s += v * v
	}
	return math.Sqrt(s)
}

// VecDot returns a·b.
func VecDot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("structural: VecDot length mismatch")
	}
	s := 0.0
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}
