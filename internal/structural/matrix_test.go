package structural

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMatrixBasics(t *testing.T) {
	m := NewMatrix(2, 3)
	m.Set(0, 0, 1)
	m.Set(1, 2, 5)
	m.Add(1, 2, 1)
	if got := m.At(1, 2); got != 6 {
		t.Fatalf("At(1,2) = %g, want 6", got)
	}
	c := m.Clone()
	c.Set(0, 0, 42)
	if m.At(0, 0) != 1 {
		t.Fatal("Clone is not a deep copy")
	}
}

func TestIdentityAndDiagonal(t *testing.T) {
	i3 := Identity(3)
	d := Diagonal([]float64{2, 3, 4})
	p := i3.Mul(d)
	for r := 0; r < 3; r++ {
		for c := 0; c < 3; c++ {
			want := 0.0
			if r == c {
				want = []float64{2, 3, 4}[r]
			}
			if got := p.At(r, c); got != want {
				t.Fatalf("I*D at (%d,%d) = %g, want %g", r, c, got, want)
			}
		}
	}
}

func TestMulVec(t *testing.T) {
	m := NewMatrix(2, 2)
	m.Set(0, 0, 1)
	m.Set(0, 1, 2)
	m.Set(1, 0, 3)
	m.Set(1, 1, 4)
	v := m.MulVec([]float64{1, 1})
	if v[0] != 3 || v[1] != 7 {
		t.Fatalf("MulVec = %v, want [3 7]", v)
	}
}

func TestSolveKnownSystem(t *testing.T) {
	// 2x + y = 5; x + 3y = 10 -> x = 1, y = 3
	m := NewMatrix(2, 2)
	m.Set(0, 0, 2)
	m.Set(0, 1, 1)
	m.Set(1, 0, 1)
	m.Set(1, 1, 3)
	x, err := m.Solve([]float64{5, 10})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(x[0], 1, 1e-12) || !almostEq(x[1], 3, 1e-12) {
		t.Fatalf("Solve = %v, want [1 3]", x)
	}
}

func TestSolveRequiresPivoting(t *testing.T) {
	// Zero on the leading diagonal forces a row swap.
	m := NewMatrix(2, 2)
	m.Set(0, 0, 0)
	m.Set(0, 1, 1)
	m.Set(1, 0, 1)
	m.Set(1, 1, 0)
	x, err := m.Solve([]float64{2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(x[0], 3, 1e-12) || !almostEq(x[1], 2, 1e-12) {
		t.Fatalf("Solve = %v, want [3 2]", x)
	}
}

func TestSolveSingular(t *testing.T) {
	m := NewMatrix(2, 2)
	m.Set(0, 0, 1)
	m.Set(0, 1, 2)
	m.Set(1, 0, 2)
	m.Set(1, 1, 4)
	if _, err := m.Solve([]float64{1, 2}); err == nil {
		t.Fatal("expected singular-matrix error")
	}
}

func TestSolveDoesNotMutate(t *testing.T) {
	m := Diagonal([]float64{2, 4})
	before := append([]float64(nil), m.Data...)
	if _, err := m.Solve([]float64{1, 1}); err != nil {
		t.Fatal(err)
	}
	for i := range before {
		if m.Data[i] != before[i] {
			t.Fatal("Solve mutated its receiver")
		}
	}
}

func TestInverse(t *testing.T) {
	m := NewMatrix(3, 3)
	vals := [][]float64{{4, 1, 0}, {1, 5, 2}, {0, 2, 6}}
	for i, row := range vals {
		for j, v := range row {
			m.Set(i, j, v)
		}
	}
	inv, err := m.Inverse()
	if err != nil {
		t.Fatal(err)
	}
	p := m.Mul(inv)
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			want := 0.0
			if i == j {
				want = 1
			}
			if !almostEq(p.At(i, j), want, 1e-10) {
				t.Fatalf("M*inv(M) at (%d,%d) = %g", i, j, p.At(i, j))
			}
		}
	}
}

// Property: for a random diagonally-dominant matrix, Solve(M, M·x) == x.
func TestSolveRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(6)
		m := NewMatrix(n, n)
		for i := 0; i < n; i++ {
			rowSum := 0.0
			for j := 0; j < n; j++ {
				v := rng.NormFloat64()
				m.Set(i, j, v)
				rowSum += math.Abs(v)
			}
			m.Set(i, i, rowSum+1) // diagonal dominance -> well conditioned
		}
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		b := m.MulVec(x)
		got, err := m.Solve(b)
		if err != nil {
			return false
		}
		for i := range x {
			if !almostEq(got[i], x[i], 1e-8*(1+math.Abs(x[i]))) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestVecHelpers(t *testing.T) {
	a := []float64{1, 2}
	b := []float64{3, 4}
	s := VecAdd(a, b, 2)
	if s[0] != 7 || s[1] != 10 {
		t.Fatalf("VecAdd = %v", s)
	}
	if got := VecDot(a, b); got != 11 {
		t.Fatalf("VecDot = %g", got)
	}
	if got := VecNorm([]float64{3, 4}); !almostEq(got, 5, 1e-15) {
		t.Fatalf("VecNorm = %g", got)
	}
	sc := VecScale(a, 3)
	if sc[0] != 3 || sc[1] != 6 {
		t.Fatalf("VecScale = %v", sc)
	}
}

func TestShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on MulVec shape mismatch")
		}
	}()
	NewMatrix(2, 2).MulVec([]float64{1})
}
