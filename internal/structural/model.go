package structural

import "math"

// FrameConfig collects the physical parameters of a MOST-style test frame:
// a single-story frame whose story drift is the controlled DOF, decomposed
// into a left column, a middle frame, and a right column substructure
// (Fig. 4 / Fig. 5 of the paper).
type FrameConfig struct {
	// Mass is the story mass (kg), lumped at the single drift DOF.
	Mass float64
	// LeftK, RightK are the elastic lateral stiffnesses of the two
	// cantilever columns (N/m).
	LeftK, RightK float64
	// MidK is the elastic stiffness of the numerically simulated middle
	// frame (N/m).
	MidK float64
	// LeftFy, RightFy are the column yield forces (N); 0 means linear.
	LeftFy, RightFy float64
	// Hardening is the post-yield stiffness ratio of the columns.
	Hardening float64
	// DampingRatio is the viscous damping ratio applied via mass- and
	// stiffness-proportional (Rayleigh) damping.
	DampingRatio float64
	// Dt and Steps define the integration grid.
	Dt    float64
	Steps int
}

// MOSTConfig returns the reference configuration of the MOST experiment
// frame: a two-bay single-story steel frame reduced to the story-drift DOF,
// 1,500 steps at Δt = 0.01 s. Parameter values are representative of the
// half-scale steel columns tested at UIUC and CU (cantilever 3EI/L³ with
// E = 200 GPa, I ≈ 2×10⁻⁵ m⁴, L = 2.5 m) — the paper reports the structure
// geometry but not section properties, so these are chosen to give a
// realistic ~0.5 s fundamental period and column yielding under a 0.4 g
// design motion.
func MOSTConfig() FrameConfig {
	const (
		eMod = 200e9 // Pa
		iSec = 2e-5  // m^4
		lCol = 2.5   // m
	)
	k := CantileverColumnStiffness(eMod, iSec, lCol) // ≈ 7.68e5 N/m
	return FrameConfig{
		Mass:         20000, // kg
		LeftK:        k,
		RightK:       k,
		MidK:         2.0e6,
		LeftFy:       25e3,
		RightFy:      25e3,
		Hardening:    0.05,
		DampingRatio: 0.02,
		Dt:           0.01,
		Steps:        1500,
	}
}

// MiniMOSTConfig returns the tabletop Mini-MOST parameters (§3.5): a 1 m ×
// 10 cm steel beam driven by a stepper motor. The beam is ~6 mm thick,
// giving a lateral stiffness of ~1.1 kN/m; the moving mass is a few kg.
func MiniMOSTConfig() FrameConfig {
	const (
		eMod  = 200e9
		width = 0.10
		thick = 0.006
		lBeam = 1.0
	)
	iSec := width * thick * thick * thick / 12
	k := CantileverColumnStiffness(eMod, iSec, lBeam)
	return FrameConfig{
		Mass:         5,
		LeftK:        k,
		RightK:       0, // single beam; right column absent
		MidK:         0.3 * k,
		LeftFy:       0, // tabletop beam stays elastic
		Hardening:    0,
		DampingRatio: 0.02,
		Dt:           0.01,
		Steps:        1500,
	}
}

// NaturalFrequency returns the (elastic) circular natural frequency ω =
// √(K_total/M) of the one-DOF frame.
func (c FrameConfig) NaturalFrequency() float64 {
	return math.Sqrt(c.TotalK() / c.Mass)
}

// Period returns the elastic fundamental period 2π/ω.
func (c FrameConfig) Period() float64 { return 2 * math.Pi / c.NaturalFrequency() }

// TotalK returns the combined elastic story stiffness.
func (c FrameConfig) TotalK() float64 { return c.LeftK + c.MidK + c.RightK }

// columnElement builds the element for one column.
func columnElement(k, fy, hardening float64) Element {
	if k <= 0 {
		return nil
	}
	if fy <= 0 {
		return NewLinearElastic(k)
	}
	return NewBilinear(k, fy, hardening)
}

// Substructures instantiates the three numerical substructures of the frame
// in paper order: left column, middle frame, right column. Entries whose
// stiffness is zero are omitted (Mini-MOST has no right column).
func (c FrameConfig) Substructures() []Substructure {
	var subs []Substructure
	if e := columnElement(c.LeftK, c.LeftFy, c.Hardening); e != nil {
		subs = append(subs, NewElementSubstructure("left-column", e))
	}
	if c.MidK > 0 {
		subs = append(subs, NewElementSubstructure("middle-frame", NewLinearElastic(c.MidK)))
	}
	if e := columnElement(c.RightK, c.RightFy, c.Hardening); e != nil {
		subs = append(subs, NewElementSubstructure("right-column", e))
	}
	return subs
}

// Assembly binds the frame substructures to the single story-drift DOF.
func (c FrameConfig) Assembly() (*Assembly, error) {
	subs := c.Substructures()
	bindings := make([]Binding, len(subs))
	for i, s := range subs {
		bindings[i] = Binding{Sub: s, DOFs: []int{0}}
	}
	return NewAssembly(1, bindings...)
}

// System assembles the full pseudo-dynamic system (mass, Rayleigh damping,
// initial stiffness, restoring function) over the given assembly. Pass the
// result of c.Assembly(), or an assembly whose substructures live behind
// NTCP for a distributed run.
func (c FrameConfig) System(a *Assembly) *System {
	m := Diagonal([]float64{c.Mass})
	k := Diagonal([]float64{c.TotalK()})
	w := c.NaturalFrequency()
	var damp *Matrix
	if c.DampingRatio > 0 {
		damp = RayleighDamping(m, k, c.DampingRatio, w, 5*w)
	}
	return &System{M: m, C: damp, K: k, R: a.Restore}
}
