package structural

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestMOSTConfigPlausible(t *testing.T) {
	c := MOSTConfig()
	if c.Steps != 1500 || c.Dt != 0.01 {
		t.Fatalf("MOST grid = %d steps at %g s; paper specifies 1500 at 0.01", c.Steps, c.Dt)
	}
	period := c.Period()
	if period < 0.2 || period > 1.0 {
		t.Fatalf("fundamental period %g s implausible for a single-story steel frame", period)
	}
	// Explicit integration must be comfortably stable on the MOST grid.
	limit := StableDt(Diagonal([]float64{c.Mass}), Diagonal([]float64{c.TotalK()}))
	if c.Dt > limit/2 {
		t.Fatalf("dt %g too close to stability limit %g", c.Dt, limit)
	}
}

func TestMOSTSubstructures(t *testing.T) {
	c := MOSTConfig()
	subs := c.Substructures()
	if len(subs) != 3 {
		t.Fatalf("MOST has 3 substructures, got %d", len(subs))
	}
	names := []string{subs[0].Name(), subs[1].Name(), subs[2].Name()}
	want := []string{"left-column", "middle-frame", "right-column"}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("substructure %d = %s, want %s", i, names[i], want[i])
		}
	}
}

func TestMiniMOSTHasNoRightColumn(t *testing.T) {
	c := MiniMOSTConfig()
	subs := c.Substructures()
	if len(subs) != 2 {
		t.Fatalf("Mini-MOST should have 2 substructures (single beam), got %d", len(subs))
	}
	for _, s := range subs {
		if s.Name() == "right-column" {
			t.Fatal("Mini-MOST must not have a right column")
		}
	}
}

func sineGround(amp, freqHz, dt float64) func(int) float64 {
	w := 2 * math.Pi * freqHz
	return func(step int) float64 { return amp * math.Sin(w*float64(step)*dt) }
}

func TestMOSTRunCompletesAndYields(t *testing.T) {
	c := MOSTConfig()
	a, err := c.Assembly()
	if err != nil {
		t.Fatal(err)
	}
	sys := c.System(a)
	// Drive near resonance at 0.4 g to guarantee yielding.
	h, err := Run(sys, NewExplicitNewmark(), RunOptions{
		Dt:     c.Dt,
		Steps:  c.Steps,
		Ground: sineGround(0.4*9.81, 1/c.Period(), c.Dt),
	})
	if err != nil {
		t.Fatal(err)
	}
	if h.Len() != c.Steps+1 {
		t.Fatalf("history has %d states, want %d", h.Len(), c.Steps+1)
	}
	dy := c.LeftFy / c.LeftK
	if peak := h.PeakDisplacement(0); peak < dy {
		t.Fatalf("peak drift %g below yield displacement %g — model never yields", peak, dy)
	}
	if e := h.HystereticEnergy(0); e <= 0 {
		t.Fatalf("hysteretic energy %g, want positive (yielding columns dissipate)", e)
	}
	if peak := h.PeakDisplacement(0); peak > 0.5 {
		t.Fatalf("peak drift %g m is unphysical — model unstable", peak)
	}
}

func TestMOSTAlphaOSMatchesNewmark(t *testing.T) {
	// For the elastic (low-amplitude) regime, alpha-OS and explicit Newmark
	// must agree closely — the cross-integrator sanity check.
	c := MOSTConfig()
	run := func(in Integrator) *History {
		a, err := c.Assembly()
		if err != nil {
			t.Fatal(err)
		}
		sys := c.System(a)
		h, err := Run(sys, in, RunOptions{
			Dt:     c.Dt,
			Steps:  500,
			Ground: sineGround(0.02*9.81, 1.3, c.Dt),
		})
		if err != nil {
			t.Fatal(err)
		}
		return h
	}
	aos, err := NewAlphaOS(-0.05)
	if err != nil {
		t.Fatal(err)
	}
	h1 := run(NewExplicitNewmark())
	h2 := run(aos)
	peak := h1.PeakDisplacement(0)
	for i := range h1.States {
		diff := math.Abs(h1.States[i].D[0] - h2.States[i].D[0])
		if diff > 0.05*peak+1e-9 {
			t.Fatalf("step %d: integrators diverge by %g (peak %g)", i, diff, peak)
		}
	}
}

func TestRunValidation(t *testing.T) {
	c := MiniMOSTConfig()
	a, _ := c.Assembly()
	sys := c.System(a)
	if _, err := Run(sys, NewExplicitNewmark(), RunOptions{Dt: 0, Steps: 10, Ground: func(int) float64 { return 0 }}); err == nil {
		t.Fatal("zero dt should fail")
	}
	if _, err := Run(sys, NewExplicitNewmark(), RunOptions{Dt: 0.01, Steps: 10}); err == nil {
		t.Fatal("missing ground motion should fail")
	}
}

func TestRunOnStepCallback(t *testing.T) {
	c := MiniMOSTConfig()
	a, _ := c.Assembly()
	sys := c.System(a)
	var calls int
	_, err := Run(sys, NewExplicitNewmark(), RunOptions{
		Dt: 0.01, Steps: 10,
		Ground: func(int) float64 { return 0 },
		OnStep: func(State) { calls++ },
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls != 11 {
		t.Fatalf("OnStep called %d times, want 11", calls)
	}
}

func TestHistoryCSV(t *testing.T) {
	c := MiniMOSTConfig()
	a, _ := c.Assembly()
	sys := c.System(a)
	h, err := Run(sys, NewExplicitNewmark(), RunOptions{
		Dt: 0.01, Steps: 5, Ground: sineGround(1, 2, 0.01),
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := h.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 7 { // header + 6 states
		t.Fatalf("CSV has %d lines, want 7", len(lines))
	}
	if !strings.HasPrefix(lines[0], "step,t,d0,f0") {
		t.Fatalf("CSV header = %q", lines[0])
	}
}

func TestHistoryAccessors(t *testing.T) {
	h := NewHistory(1, 2)
	h.Record(State{Step: 0, T: 0, D: []float64{1}, V: []float64{0}, A: []float64{0}, F: []float64{-3}})
	h.Record(State{Step: 1, T: 0.01, D: []float64{-2}, V: []float64{0}, A: []float64{0}, F: []float64{5}})
	if got := h.PeakDisplacement(0); got != 2 {
		t.Fatalf("PeakDisplacement = %g", got)
	}
	if got := h.PeakForce(0); got != 5 {
		t.Fatalf("PeakForce = %g", got)
	}
	d := h.Displacement(0)
	if d[0] != 1 || d[1] != -2 {
		t.Fatalf("Displacement = %v", d)
	}
	f := h.Force(0)
	if f[0] != -3 || f[1] != 5 {
		t.Fatalf("Force = %v", f)
	}
	ts := h.Times()
	if ts[1] != 0.01 {
		t.Fatalf("Times = %v", ts)
	}
}
