package structural

import (
	"encoding/json"
	"fmt"
)

// Resumable is implemented by integrators whose internal state can be
// externalized for coordinator checkpointing and reconstructed mid-run.
// The contract is exact: an integrator resumed from a snapshot taken after
// step n produces bit-identical states for steps n+1.. as the original
// would have — the property that lets a restarted coordinator re-propose
// a step under the same deterministic transaction names and have the
// sites' dedupe tables answer with the cached results.
//
// Snapshots are JSON so checkpoint files stay inspectable; float64 values
// survive the round trip exactly (encoding/json emits the shortest
// representation that parses back to the same bits).
type Resumable interface {
	Integrator
	// Snapshot externalizes the integrator's state after the last
	// committed step.
	Snapshot() ([]byte, error)
	// Resume reconstructs the integrator from a snapshot, binding it to
	// sys and dt as Init would. The integrator must be fresh (not
	// initialized) and the snapshot must come from the same scheme.
	Resume(sys *System, dt float64, snapshot []byte) error
}

// newmarkSnapshot is the externalized state of ExplicitNewmark.
type newmarkSnapshot struct {
	Scheme string `json:"scheme"`
	State  State  `json:"state"`
}

// Snapshot externalizes the last committed state.
func (in *ExplicitNewmark) Snapshot() ([]byte, error) {
	if in.sys == nil {
		return nil, fmt.Errorf("structural: snapshot of uninitialized integrator")
	}
	return json.Marshal(newmarkSnapshot{Scheme: in.Name(), State: cloneState(in.st)})
}

// Resume reconstructs the integrator at a snapshotted step.
func (in *ExplicitNewmark) Resume(sys *System, dt float64, snapshot []byte) error {
	if in.sys != nil {
		return fmt.Errorf("structural: resume of an already-initialized integrator")
	}
	if err := sys.validate(); err != nil {
		return err
	}
	if dt <= 0 {
		return fmt.Errorf("structural: non-positive dt %g", dt)
	}
	var snap newmarkSnapshot
	if err := json.Unmarshal(snapshot, &snap); err != nil {
		return fmt.Errorf("structural: decode snapshot: %w", err)
	}
	if snap.Scheme != in.Name() {
		return fmt.Errorf("structural: snapshot scheme %q != %q", snap.Scheme, in.Name())
	}
	n := sys.M.Rows
	if len(snap.State.D) != n || len(snap.State.V) != n || len(snap.State.A) != n || len(snap.State.F) != n {
		return fmt.Errorf("structural: snapshot state length mismatch (want %d DOFs)", n)
	}
	in.sys, in.dt, in.n = sys, dt, n
	in.mhat = sys.M.Clone().AddMatrix(sys.damping(), dt/2)
	in.st = cloneState(snap.State)
	return nil
}

// alphaOSSnapshot is the externalized state of AlphaOS: the committed
// state plus the operator-splitting correction terms of the current step.
type alphaOSSnapshot struct {
	Scheme string    `json:"scheme"`
	Alpha  float64   `json:"alpha"`
	State  State     `json:"state"`
	Ftilde []float64 `json:"ftilde"`
	Dtilde []float64 `json:"dtilde"`
	PPrev  []float64 `json:"p_prev"`
}

// Snapshot externalizes the last committed state and correction terms.
func (in *AlphaOS) Snapshot() ([]byte, error) {
	if in.sys == nil {
		return nil, fmt.Errorf("structural: snapshot of uninitialized integrator")
	}
	return json.Marshal(alphaOSSnapshot{
		Scheme: in.Name(),
		Alpha:  in.Alpha,
		State:  cloneState(in.st),
		Ftilde: append([]float64(nil), in.ftilde...),
		Dtilde: append([]float64(nil), in.dtilde...),
		PPrev:  append([]float64(nil), in.pPrev...),
	})
}

// Resume reconstructs the integrator at a snapshotted step.
func (in *AlphaOS) Resume(sys *System, dt float64, snapshot []byte) error {
	if in.sys != nil {
		return fmt.Errorf("structural: resume of an already-initialized integrator")
	}
	if err := sys.validate(); err != nil {
		return err
	}
	if sys.K == nil {
		return fmt.Errorf("structural: alpha-OS requires the initial stiffness matrix")
	}
	if dt <= 0 {
		return fmt.Errorf("structural: non-positive dt %g", dt)
	}
	var snap alphaOSSnapshot
	if err := json.Unmarshal(snapshot, &snap); err != nil {
		return fmt.Errorf("structural: decode snapshot: %w", err)
	}
	if snap.Scheme != in.Name() {
		return fmt.Errorf("structural: snapshot scheme %q != %q", snap.Scheme, in.Name())
	}
	n := sys.M.Rows
	if len(snap.State.D) != n || len(snap.Ftilde) != n || len(snap.Dtilde) != n || len(snap.PPrev) != n {
		return fmt.Errorf("structural: snapshot state length mismatch (want %d DOFs)", n)
	}
	in.sys, in.dt, in.n = sys, dt, n
	in.beta = (1 - in.Alpha) * (1 - in.Alpha) / 4
	in.gamma = 0.5 - in.Alpha
	in.mhat = sys.M.Clone().
		AddMatrix(sys.damping(), (1+in.Alpha)*in.gamma*dt).
		AddMatrix(sys.K, (1+in.Alpha)*in.beta*dt*dt)
	in.st = cloneState(snap.State)
	in.ftilde = append([]float64(nil), snap.Ftilde...)
	in.dtilde = append([]float64(nil), snap.Dtilde...)
	in.pPrev = append([]float64(nil), snap.PPrev...)
	return nil
}

var (
	_ Resumable = (*ExplicitNewmark)(nil)
	_ Resumable = (*AlphaOS)(nil)
)
