package structural

import (
	"math"
	"testing"
)

// snapshotSystem builds a 1-DOF bilinear system whose trajectory exercises
// yield excursions (so resumed state must carry real hysteretic history).
func snapshotSystem(el Element) *System {
	return &System{
		M: Diagonal([]float64{100}),
		K: Diagonal([]float64{el.InitialStiffness()}),
		R: func(d []float64) ([]float64, error) {
			return []float64{el.Restore(d[0])}, nil
		},
	}
}

func snapshotGround(step int) float64 {
	return 6.0 * math.Sin(2*math.Pi*1.2*float64(step)*0.01)
}

// runSplit runs `fresh` for total steps, snapshotting at cut, then resumes a
// second integrator (built by mk) from the snapshot and finishes the run.
// Returns (reference history, stitched resumed history tail).
func runSplit(t *testing.T, mk func() Resumable, total, cut int) (*History, []State) {
	t.Helper()

	// Reference: uninterrupted run over one element instance.
	refEl := NewBilinear(2000, 900, 0.05)
	ref, err := Run(snapshotSystem(refEl), mk(), RunOptions{Dt: 0.01, Steps: total, Ground: snapshotGround})
	if err != nil {
		t.Fatal(err)
	}

	// First half on a second element instance, snapshot at the cut.
	el := NewBilinear(2000, 900, 0.05)
	sys := snapshotSystem(el)
	first := mk()
	st, err := first.Init(sys, 0.01, make([]float64, 1), make([]float64, 1),
		GroundLoad(sys.M, Ones(1), snapshotGround(0)))
	if err != nil {
		t.Fatal(err)
	}
	for s := 1; s <= cut; s++ {
		if st, err = first.Step(GroundLoad(sys.M, Ones(1), snapshotGround(s))); err != nil {
			t.Fatal(err)
		}
	}
	if st.Step != cut {
		t.Fatalf("cut at step %d, want %d", st.Step, cut)
	}
	snap, err := first.Snapshot()
	if err != nil {
		t.Fatal(err)
	}

	// Resume a fresh integrator and finish. The element keeps its state (in
	// a distributed run it lives at the site, which did not restart).
	second := mk()
	if err := second.Resume(sys, 0.01, snap); err != nil {
		t.Fatal(err)
	}
	var tail []State
	for s := cut + 1; s <= total; s++ {
		st, err := second.Step(GroundLoad(sys.M, Ones(1), snapshotGround(s)))
		if err != nil {
			t.Fatal(err)
		}
		tail = append(tail, st)
	}
	return ref, tail
}

func sameState(a, b State) bool {
	if a.Step != b.Step || a.T != b.T {
		return false
	}
	for i := range a.D {
		if a.D[i] != b.D[i] || a.V[i] != b.V[i] || a.A[i] != b.A[i] || a.F[i] != b.F[i] {
			return false
		}
	}
	return true
}

func TestSnapshotResumeBitIdentical(t *testing.T) {
	// The Resumable contract: a resumed integrator continues the exact
	// trajectory — bit-identical, not merely close — because the checkpoint
	// round-trips float64 through JSON exactly.
	cases := []struct {
		name string
		mk   func() Resumable
	}{
		{"explicit-newmark", func() Resumable { return NewExplicitNewmark() }},
		{"alpha-os", func() Resumable {
			in, err := NewAlphaOS(-0.05)
			if err != nil {
				t.Fatal(err)
			}
			return in
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ref, tail := runSplit(t, tc.mk, 120, 47)
			if len(tail) != 120-47 {
				t.Fatalf("resumed %d steps, want %d", len(tail), 120-47)
			}
			for _, st := range tail {
				if !sameState(ref.States[st.Step], st) {
					t.Fatalf("step %d diverged after resume:\nref %+v\ngot %+v",
						st.Step, ref.States[st.Step], st)
				}
			}
		})
	}
}

func TestResumeRejectsMisuse(t *testing.T) {
	el := NewBilinear(2000, 900, 0.05)
	sys := snapshotSystem(el)
	in := NewExplicitNewmark()
	if _, err := in.Snapshot(); err == nil {
		t.Fatal("snapshot of uninitialized integrator should fail")
	}
	if _, err := in.Init(sys, 0.01, []float64{0}, []float64{0}, []float64{0}); err != nil {
		t.Fatal(err)
	}
	snap, err := in.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if err := in.Resume(sys, 0.01, snap); err == nil {
		t.Fatal("resume of an initialized integrator should fail")
	}
	alt, err := NewAlphaOS(-0.05)
	if err != nil {
		t.Fatal(err)
	}
	if err := alt.Resume(sys, 0.01, snap); err == nil {
		t.Fatal("resume across schemes should fail")
	}
	if err := NewExplicitNewmark().Resume(sys, 0, snap); err == nil {
		t.Fatal("resume with non-positive dt should fail")
	}
	if err := NewExplicitNewmark().Resume(sys, 0.01, []byte("{")); err == nil {
		t.Fatal("resume from corrupt snapshot should fail")
	}
}
