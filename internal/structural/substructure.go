package structural

import (
	"fmt"
	"sync"
)

// Substructure is the pseudo-dynamic view of one piece of a decomposed test
// structure: impose boundary displacements, get back measured restoring
// forces. In MOST the left column (UIUC), right column (CU), and middle
// frame (NCSA) were each one Substructure. Physical rigs, rig emulations,
// and numerical models all satisfy this interface — the same property that
// NTCP gives at the protocol level ("a physical experiment and a
// computational simulation are indistinguishable").
type Substructure interface {
	// Name identifies the substructure (e.g. "uiuc-left-column").
	Name() string
	// NDOF returns the number of boundary degrees of freedom.
	NDOF() int
	// Apply imposes the displacement vector (meters) and returns the
	// restoring forces (newtons) measured at the boundary DOFs.
	Apply(d []float64) ([]float64, error)
	// Reset returns the substructure to its virgin state.
	Reset() error
}

// ElementSubstructure is a numerical substructure backed by element models,
// one element per boundary DOF (adequate for the story-drift models used in
// MOST and Mini-MOST). It is safe for concurrent use.
type ElementSubstructure struct {
	name string

	mu       sync.Mutex
	elements []Element
}

// NewElementSubstructure builds a numerical substructure from per-DOF
// elements.
func NewElementSubstructure(name string, elements ...Element) *ElementSubstructure {
	if len(elements) == 0 {
		panic("structural: substructure needs at least one element")
	}
	return &ElementSubstructure{name: name, elements: elements}
}

func (s *ElementSubstructure) Name() string { return s.name }
func (s *ElementSubstructure) NDOF() int    { return len(s.elements) }

// Apply imposes d and returns element restoring forces.
func (s *ElementSubstructure) Apply(d []float64) ([]float64, error) {
	if len(d) != len(s.elements) {
		return nil, fmt.Errorf("structural: substructure %s expects %d dofs, got %d", s.name, len(s.elements), len(d))
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	f := make([]float64, len(d))
	for i, e := range s.elements {
		f[i] = e.Restore(d[i])
	}
	return f, nil
}

// Reset restores every element to its virgin state.
func (s *ElementSubstructure) Reset() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, e := range s.elements {
		e.Reset()
	}
	return nil
}

// InitialStiffness returns the diagonal initial-stiffness matrix of the
// substructure (used to assemble the α-OS initial stiffness).
func (s *ElementSubstructure) InitialStiffness() *Matrix {
	k := NewMatrix(len(s.elements), len(s.elements))
	for i, e := range s.elements {
		k.Set(i, i, e.InitialStiffness())
	}
	return k
}

// Binding attaches a substructure's local DOFs to global model DOFs.
type Binding struct {
	Sub  Substructure
	DOFs []int // DOFs[i] = global index of the substructure's local DOF i
}

// Assembly couples substructures into one global restoring-force function —
// the structural heart of the MS-PSDS method: the coordinator computes
// global displacements, each substructure receives its share, and the
// measured forces are scattered back into the global vector.
type Assembly struct {
	NDOF     int
	Bindings []Binding
}

// NewAssembly validates DOF maps and returns the assembly.
func NewAssembly(ndof int, bindings ...Binding) (*Assembly, error) {
	if ndof <= 0 {
		return nil, fmt.Errorf("structural: assembly needs at least one DOF")
	}
	for _, b := range bindings {
		if b.Sub == nil {
			return nil, fmt.Errorf("structural: nil substructure in assembly")
		}
		if len(b.DOFs) != b.Sub.NDOF() {
			return nil, fmt.Errorf("structural: substructure %s has %d dofs, binding maps %d",
				b.Sub.Name(), b.Sub.NDOF(), len(b.DOFs))
		}
		for _, g := range b.DOFs {
			if g < 0 || g >= ndof {
				return nil, fmt.Errorf("structural: substructure %s maps to out-of-range global dof %d", b.Sub.Name(), g)
			}
		}
	}
	return &Assembly{NDOF: ndof, Bindings: bindings}, nil
}

// Restore imposes the global displacement vector on every substructure
// (gather → Apply → scatter) and returns the assembled restoring force.
// Substructures are invoked sequentially; distributed parallel invocation is
// the coordinator's job (internal/coord), which replaces this method with
// NTCP transactions.
func (a *Assembly) Restore(d []float64) ([]float64, error) {
	if len(d) != a.NDOF {
		return nil, fmt.Errorf("structural: assembly expects %d dofs, got %d", a.NDOF, len(d))
	}
	f := make([]float64, a.NDOF)
	for _, b := range a.Bindings {
		local := make([]float64, len(b.DOFs))
		for i, g := range b.DOFs {
			local[i] = d[g]
		}
		lf, err := b.Sub.Apply(local)
		if err != nil {
			return nil, fmt.Errorf("structural: substructure %s: %w", b.Sub.Name(), err)
		}
		if len(lf) != len(b.DOFs) {
			return nil, fmt.Errorf("structural: substructure %s returned %d forces for %d dofs",
				b.Sub.Name(), len(lf), len(b.DOFs))
		}
		for i, g := range b.DOFs {
			f[g] += lf[i]
		}
	}
	return f, nil
}

// Reset resets every bound substructure.
func (a *Assembly) Reset() error {
	for _, b := range a.Bindings {
		if err := b.Sub.Reset(); err != nil {
			return fmt.Errorf("structural: reset %s: %w", b.Sub.Name(), err)
		}
	}
	return nil
}

// Gather extracts the local displacement vector for one binding from the
// global vector.
func (b Binding) Gather(global []float64) []float64 {
	local := make([]float64, len(b.DOFs))
	for i, g := range b.DOFs {
		local[i] = global[g]
	}
	return local
}

// Scatter accumulates local forces into the global vector.
func (b Binding) Scatter(local, global []float64) {
	for i, g := range b.DOFs {
		global[g] += local[i]
	}
}
