package structural

import (
	"strings"
	"sync"
	"testing"
)

func TestElementSubstructureApply(t *testing.T) {
	s := NewElementSubstructure("s", NewLinearElastic(10), NewLinearElastic(20))
	f, err := s.Apply([]float64{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if f[0] != 10 || f[1] != 40 {
		t.Fatalf("Apply = %v, want [10 40]", f)
	}
	if s.NDOF() != 2 || s.Name() != "s" {
		t.Fatal("metadata mismatch")
	}
}

func TestElementSubstructureDimensionCheck(t *testing.T) {
	s := NewElementSubstructure("s", NewLinearElastic(10))
	if _, err := s.Apply([]float64{1, 2}); err == nil {
		t.Fatal("expected dimension error")
	}
}

func TestElementSubstructureReset(t *testing.T) {
	s := NewElementSubstructure("s", NewBilinear(1000, 10, 0.1))
	if _, err := s.Apply([]float64{0.05}); err != nil {
		t.Fatal(err)
	}
	if err := s.Reset(); err != nil {
		t.Fatal(err)
	}
	f, err := s.Apply([]float64{0.005})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(f[0], 5, 1e-12) {
		t.Fatalf("after reset force = %g, want 5", f[0])
	}
}

func TestElementSubstructureConcurrentApply(t *testing.T) {
	s := NewElementSubstructure("s", NewLinearElastic(10))
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				if _, err := s.Apply([]float64{0.01}); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
}

func TestElementSubstructureInitialStiffness(t *testing.T) {
	s := NewElementSubstructure("s", NewBilinear(1000, 10, 0.1), NewLinearElastic(50))
	k := s.InitialStiffness()
	if k.At(0, 0) != 1000 || k.At(1, 1) != 50 || k.At(0, 1) != 0 {
		t.Fatalf("InitialStiffness = %v", k.Data)
	}
}

func TestAssemblyRestore(t *testing.T) {
	left := NewElementSubstructure("left", NewLinearElastic(10))
	mid := NewElementSubstructure("mid", NewLinearElastic(20))
	a, err := NewAssembly(1,
		Binding{Sub: left, DOFs: []int{0}},
		Binding{Sub: mid, DOFs: []int{0}},
	)
	if err != nil {
		t.Fatal(err)
	}
	f, err := a.Restore([]float64{2})
	if err != nil {
		t.Fatal(err)
	}
	if f[0] != 60 { // (10+20)*2
		t.Fatalf("Restore = %v, want [60]", f)
	}
}

func TestAssemblyMultiDOFScatter(t *testing.T) {
	// Two global DOFs; one substructure spans both, another only DOF 1.
	span := NewElementSubstructure("span", NewLinearElastic(10), NewLinearElastic(10))
	one := NewElementSubstructure("one", NewLinearElastic(5))
	a, err := NewAssembly(2,
		Binding{Sub: span, DOFs: []int{0, 1}},
		Binding{Sub: one, DOFs: []int{1}},
	)
	if err != nil {
		t.Fatal(err)
	}
	f, err := a.Restore([]float64{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if f[0] != 10 || f[1] != 30 { // span contributes 20 at DOF 1, one adds 5*2
		t.Fatalf("Restore = %v, want [10 30]", f)
	}
}

func TestAssemblyValidation(t *testing.T) {
	s := NewElementSubstructure("s", NewLinearElastic(1))
	if _, err := NewAssembly(0); err == nil {
		t.Fatal("zero DOFs should fail")
	}
	if _, err := NewAssembly(1, Binding{Sub: nil}); err == nil {
		t.Fatal("nil substructure should fail")
	}
	if _, err := NewAssembly(1, Binding{Sub: s, DOFs: []int{5}}); err == nil {
		t.Fatal("out-of-range DOF should fail")
	}
	if _, err := NewAssembly(1, Binding{Sub: s, DOFs: []int{0, 0}}); err == nil {
		t.Fatal("DOF count mismatch should fail")
	}
}

type failingSub struct{ name string }

func (f *failingSub) Name() string                         { return f.name }
func (f *failingSub) NDOF() int                            { return 1 }
func (f *failingSub) Apply(d []float64) ([]float64, error) { return nil, errBoom }
func (f *failingSub) Reset() error                         { return nil }

var errBoom = &subError{"boom"}

type subError struct{ msg string }

func (e *subError) Error() string { return e.msg }

func TestAssemblyPropagatesSubstructureError(t *testing.T) {
	a, err := NewAssembly(1, Binding{Sub: &failingSub{"bad"}, DOFs: []int{0}})
	if err != nil {
		t.Fatal(err)
	}
	_, err = a.Restore([]float64{0})
	if err == nil || !strings.Contains(err.Error(), "bad") {
		t.Fatalf("expected wrapped error naming the substructure, got %v", err)
	}
}

func TestBindingGatherScatter(t *testing.T) {
	b := Binding{DOFs: []int{2, 0}}
	local := b.Gather([]float64{10, 20, 30})
	if local[0] != 30 || local[1] != 10 {
		t.Fatalf("Gather = %v", local)
	}
	global := make([]float64, 3)
	b.Scatter([]float64{1, 2}, global)
	if global[0] != 2 || global[2] != 1 {
		t.Fatalf("Scatter = %v", global)
	}
}
