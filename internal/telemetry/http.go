package telemetry

import (
	"encoding/json"
	"net/http"
	"runtime"
	"strings"
	"time"
)

// processStart anchors process.uptime.seconds.
var processStart = time.Now()

// ProcessMetrics refreshes the process self-metric gauges on reg:
// process.goroutines, process.heap_bytes, and process.uptime.seconds.
// Every daemon exports these through Handler so the obs aggregator's
// health view can tell a wedged process (goroutines climbing, uptime
// frozen between scrapes) from a merely slow one. ReadMemStats briefly
// stops the world, so this runs per scrape, never on a hot path.
func ProcessMetrics(reg *Registry) {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	reg.Gauge("process.goroutines").Set(float64(runtime.NumGoroutine()))
	reg.Gauge("process.heap_bytes").Set(float64(ms.HeapAlloc))
	reg.Gauge("process.uptime.seconds").Set(time.Since(processStart).Seconds())
}

// Handler serves a registry's live snapshot over HTTP, refreshing the
// process self-metrics on every request. It is the one metrics endpoint
// shape shared by every daemon: the default rendering is indented JSON
// (what `mostctl metrics` and humans with curl read); a client whose
// Accept header asks for text/plain — a Prometheus scraper — gets the
// text exposition format instead.
func Handler(reg *Registry) http.Handler {
	return SnapshotHandler(func() Snapshot {
		ProcessMetrics(reg)
		return reg.Snapshot()
	})
}

// SnapshotHandler is Handler for any snapshot source — a component that
// decorates its registry before snapshotting (ogsi containers mirror
// trust-store stats in) or an aggregator serving a merged fleet view
// serves the same dual JSON/Prometheus shape through this.
func SnapshotHandler(snap func() Snapshot) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "telemetry: GET only", http.StatusMethodNotAllowed)
			return
		}
		s := snap()
		if strings.Contains(r.Header.Get("Accept"), "text/plain") {
			w.Header().Set("Content-Type", PrometheusContentType)
			_ = WritePrometheus(w, s)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(s)
	})
}
