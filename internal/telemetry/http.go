package telemetry

import (
	"encoding/json"
	"net/http"
	"strings"
)

// Handler serves a registry's live snapshot over HTTP. It is the one
// metrics endpoint shape shared by every daemon: the default rendering is
// indented JSON (what `mostctl metrics` and humans with curl read); a
// client whose Accept header asks for text/plain — a Prometheus scraper —
// gets the text exposition format instead.
func Handler(reg *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "telemetry: GET only", http.StatusMethodNotAllowed)
			return
		}
		snap := reg.Snapshot()
		if strings.Contains(r.Header.Get("Accept"), "text/plain") {
			w.Header().Set("Content-Type", PrometheusContentType)
			_ = WritePrometheus(w, snap)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(snap)
	})
}
