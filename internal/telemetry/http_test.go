package telemetry

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestHandlerServesJSONByDefault(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("nsds.tier.dropped.hub").Add(7)
	ts := httptest.NewServer(Handler(reg))
	defer ts.Close()

	resp, err := http.Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("content type = %q", ct)
	}
	var snap Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if snap.Counters["nsds.tier.dropped.hub"] != 7 {
		t.Fatalf("counter = %d, want 7", snap.Counters["nsds.tier.dropped.hub"])
	}
}

func TestHandlerServesPrometheusOnAccept(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("nsds.tier.dropped.relay").Add(3)
	ts := httptest.NewServer(Handler(reg))
	defer ts.Close()

	req, _ := http.NewRequest(http.MethodGet, ts.URL, nil)
	req.Header.Set("Accept", "text/plain")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != PrometheusContentType {
		t.Fatalf("content type = %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(body), "nsds_tier_dropped_relay_total 3") {
		t.Fatalf("exposition missing counter:\n%s", body)
	}
}

func TestHandlerExportsProcessSelfMetrics(t *testing.T) {
	reg := NewRegistry()
	ts := httptest.NewServer(Handler(reg))
	defer ts.Close()

	resp, err := http.Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if snap.Gauges["process.goroutines"] < 1 {
		t.Fatalf("process.goroutines = %v, want >= 1", snap.Gauges["process.goroutines"])
	}
	if snap.Gauges["process.heap_bytes"] <= 0 {
		t.Fatalf("process.heap_bytes = %v, want > 0", snap.Gauges["process.heap_bytes"])
	}
	if up, ok := snap.Gauges["process.uptime.seconds"]; !ok || up < 0 {
		t.Fatalf("process.uptime.seconds = %v (present=%v)", up, ok)
	}
}

func TestSnapshotHandlerServesCustomSource(t *testing.T) {
	calls := 0
	ts := httptest.NewServer(SnapshotHandler(func() Snapshot {
		calls++
		return Snapshot{Counters: map[string]int64{"fleet.sites": 2}}
	}))
	defer ts.Close()

	req, _ := http.NewRequest(http.MethodGet, ts.URL, nil)
	req.Header.Set("Accept", "text/plain")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), "fleet_sites_total 2") {
		t.Fatalf("custom snapshot not served:\n%s", body)
	}
	if calls != 1 {
		t.Fatalf("snapshot source called %d times, want 1", calls)
	}
}

func TestHandlerRejectsNonGET(t *testing.T) {
	ts := httptest.NewServer(Handler(NewRegistry()))
	defer ts.Close()
	resp, err := http.Post(ts.URL, "text/plain", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("status = %d", resp.StatusCode)
	}
}
