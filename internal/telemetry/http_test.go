package telemetry

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestHandlerServesJSONByDefault(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("nsds.tier.dropped.hub").Add(7)
	ts := httptest.NewServer(Handler(reg))
	defer ts.Close()

	resp, err := http.Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("content type = %q", ct)
	}
	var snap Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if snap.Counters["nsds.tier.dropped.hub"] != 7 {
		t.Fatalf("counter = %d, want 7", snap.Counters["nsds.tier.dropped.hub"])
	}
}

func TestHandlerServesPrometheusOnAccept(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("nsds.tier.dropped.relay").Add(3)
	ts := httptest.NewServer(Handler(reg))
	defer ts.Close()

	req, _ := http.NewRequest(http.MethodGet, ts.URL, nil)
	req.Header.Set("Accept", "text/plain")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != PrometheusContentType {
		t.Fatalf("content type = %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(body), "nsds_tier_dropped_relay_total 3") {
		t.Fatalf("exposition missing counter:\n%s", body)
	}
}

func TestHandlerRejectsNonGET(t *testing.T) {
	ts := httptest.NewServer(Handler(NewRegistry()))
	defer ts.Close()
	resp, err := http.Post(ts.URL, "text/plain", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("status = %d", resp.StatusCode)
	}
}
