package telemetry

import (
	"fmt"
	"sort"
)

// This file makes registry snapshots mergeable: N sites' snapshots combine
// into one exact fleet-wide view. Counters and gauges sum; histograms merge
// bucket-by-bucket (identical bounds required) and recompute quantiles from
// the merged vector, so a fleet-wide p99 is the p99 of the union of
// observations — never an average of per-site quantiles, which has no
// statistical meaning. Merge is commutative, and associative up to
// floating-point summation order, so an aggregator may fold sites in any
// order.

// MergeHistogramSnapshots merges two snapshots of histograms with
// identical bucket bounds. An empty snapshot (zero observations) is the
// identity. Snapshots with differing bucket vectors are rejected — merging
// them would silently misattribute mass.
func MergeHistogramSnapshots(a, b HistogramSnapshot) (HistogramSnapshot, error) {
	if a.Count == 0 {
		return b, nil
	}
	if b.Count == 0 {
		return a, nil
	}
	if len(a.Buckets) != len(b.Buckets) {
		return HistogramSnapshot{}, fmt.Errorf(
			"telemetry: merge: bucket count mismatch (%d vs %d)", len(a.Buckets), len(b.Buckets))
	}
	m := HistogramSnapshot{
		Count:   a.Count + b.Count,
		Sum:     a.Sum + b.Sum,
		Min:     a.Min,
		Max:     a.Max,
		Buckets: make([]BucketCount, len(a.Buckets)),
	}
	if b.Min < m.Min {
		m.Min = b.Min
	}
	if b.Max > m.Max {
		m.Max = b.Max
	}
	for i := range a.Buckets {
		if a.Buckets[i].LE != b.Buckets[i].LE {
			return HistogramSnapshot{}, fmt.Errorf(
				"telemetry: merge: bucket bound mismatch at %d (%g vs %g)",
				i, a.Buckets[i].LE, b.Buckets[i].LE)
		}
		// Cumulative vectors over identical bounds sum elementwise; the
		// +Inf overflow accumulates implicitly via Count.
		m.Buckets[i] = BucketCount{LE: a.Buckets[i].LE, Count: a.Buckets[i].Count + b.Buckets[i].Count}
	}
	m.Mean = m.Sum / float64(m.Count)
	m.P50 = m.Quantile(0.50)
	m.P95 = m.Quantile(0.95)
	m.P99 = m.Quantile(0.99)
	m.Exemplar = mergeExemplars(a.Exemplar, b.Exemplar)
	return m, nil
}

// mergeExemplars keeps the slower observation's exemplar; ties break on
// the lexicographically smaller trace ID so the result is commutative.
func mergeExemplars(a, b *Exemplar) *Exemplar {
	switch {
	case a == nil:
		return b
	case b == nil:
		return a
	case a.Value > b.Value:
		return a
	case b.Value > a.Value:
		return b
	case a.TraceID <= b.TraceID:
		return a
	default:
		return b
	}
}

// MergeSnapshots merges two registry snapshots into one fleet-wide view:
// counters and gauges sum (a gauge like process.goroutines becomes the
// fleet total), histograms merge exactly per MergeHistogramSnapshots, and
// events interleave in timestamp order. Missing metrics on either side are
// treated as zero/absent. The first histogram bound mismatch aborts the
// merge with an error naming the metric.
func MergeSnapshots(a, b Snapshot) (Snapshot, error) {
	out := Snapshot{
		Counters:   make(map[string]int64, len(a.Counters)+len(b.Counters)),
		Gauges:     make(map[string]float64, len(a.Gauges)+len(b.Gauges)),
		Histograms: make(map[string]HistogramSnapshot, len(a.Histograms)+len(b.Histograms)),
	}
	for k, v := range a.Counters {
		out.Counters[k] = v
	}
	for k, v := range b.Counters {
		out.Counters[k] += v
	}
	for k, v := range a.Gauges {
		out.Gauges[k] = v
	}
	for k, v := range b.Gauges {
		out.Gauges[k] += v
	}
	for k, v := range a.Histograms {
		out.Histograms[k] = v
	}
	for k, v := range b.Histograms {
		prev, ok := out.Histograms[k]
		if !ok {
			out.Histograms[k] = v
			continue
		}
		m, err := MergeHistogramSnapshots(prev, v)
		if err != nil {
			return Snapshot{}, fmt.Errorf("histogram %s: %w", k, err)
		}
		out.Histograms[k] = m
	}
	out.Events = mergeEvents(a.Events, b.Events)
	return out, nil
}

// MergeAll folds any number of snapshots (zero snapshots merge to an empty
// one).
func MergeAll(snaps ...Snapshot) (Snapshot, error) {
	var out Snapshot
	var err error
	for i, s := range snaps {
		if i == 0 {
			out = s
			continue
		}
		out, err = MergeSnapshots(out, s)
		if err != nil {
			return Snapshot{}, err
		}
	}
	return out, nil
}

// mergeEvents interleaves two already-ordered event slices by timestamp
// (ties keep a-before-b order, then are normalized by a stable sort on
// component/event so the merge stays commutative).
func mergeEvents(a, b []Event) []Event {
	if len(a) == 0 {
		return b
	}
	if len(b) == 0 {
		return a
	}
	out := make([]Event, 0, len(a)+len(b))
	out = append(out, a...)
	out = append(out, b...)
	sort.SliceStable(out, func(i, j int) bool {
		if !out[i].TS.Equal(out[j].TS) {
			return out[i].TS.Before(out[j].TS)
		}
		if out[i].Component != out[j].Component {
			return out[i].Component < out[j].Component
		}
		return out[i].Event < out[j].Event
	})
	return out
}
