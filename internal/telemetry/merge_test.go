package telemetry

import (
	"strings"
	"sync"
	"testing"
	"time"
)

// feed observes every value into a fresh histogram with the given bounds
// and returns its snapshot.
func feed(t *testing.T, bounds []float64, values []float64) HistogramSnapshot {
	t.Helper()
	h := newHistogram(bounds)
	for _, v := range values {
		h.Observe(v)
	}
	return h.Snapshot()
}

func TestMergeEmptyHistograms(t *testing.T) {
	m, err := MergeHistogramSnapshots(HistogramSnapshot{}, HistogramSnapshot{})
	if err != nil {
		t.Fatalf("empty merge: %v", err)
	}
	if m.Count != 0 || m.Sum != 0 || len(m.Buckets) != 0 {
		t.Fatalf("empty + empty should be empty, got %+v", m)
	}

	// Empty is the identity: empty + x == x, in either order.
	bounds := []float64{1, 2, 4}
	x := feed(t, bounds, []float64{0.5, 3})
	for _, pair := range [][2]HistogramSnapshot{{x, {}}, {{}, x}} {
		m, err := MergeHistogramSnapshots(pair[0], pair[1])
		if err != nil {
			t.Fatalf("identity merge: %v", err)
		}
		if m.Count != x.Count || m.P99 != x.P99 || m.Min != x.Min || m.Max != x.Max {
			t.Fatalf("empty should be identity: got %+v want %+v", m, x)
		}
	}
}

func TestMergeMismatchedBoundsRejected(t *testing.T) {
	a := feed(t, []float64{1, 2, 4}, []float64{0.5})
	b := feed(t, []float64{1, 2}, []float64{0.5})
	if _, err := MergeHistogramSnapshots(a, b); err == nil {
		t.Fatal("bucket count mismatch must be rejected")
	}
	c := feed(t, []float64{1, 3, 4}, []float64{0.5})
	if _, err := MergeHistogramSnapshots(a, c); err == nil {
		t.Fatal("bucket bound mismatch must be rejected")
	}

	// Through MergeSnapshots the error names the offending metric.
	sa := Snapshot{Histograms: map[string]HistogramSnapshot{"x.seconds": a}}
	sb := Snapshot{Histograms: map[string]HistogramSnapshot{"x.seconds": c}}
	if _, err := MergeSnapshots(sa, sb); err == nil || !strings.Contains(err.Error(), "x.seconds") {
		t.Fatalf("MergeSnapshots should name the metric, got %v", err)
	}
}

func TestMergeOverflowBucketAccumulation(t *testing.T) {
	bounds := []float64{1, 2}
	a := feed(t, bounds, []float64{0.5, 10, 20}) // two in +Inf overflow
	b := feed(t, bounds, []float64{1.5, 30})     // one in +Inf overflow
	m, err := MergeHistogramSnapshots(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if m.Count != 5 {
		t.Fatalf("Count = %d, want 5", m.Count)
	}
	// Overflow mass = Count - last cumulative bucket.
	last := m.Buckets[len(m.Buckets)-1].Count
	if got := m.Count - last; got != 3 {
		t.Fatalf("overflow bucket = %d, want 3 (buckets %+v)", got, m.Buckets)
	}
	if m.Max != 30 || m.Min != 0.5 {
		t.Fatalf("min/max = %g/%g, want 0.5/30", m.Min, m.Max)
	}
	// Quantiles in the overflow bucket stay clamped to the observed max.
	if m.P99 > m.Max {
		t.Fatalf("p99 %g exceeds observed max %g", m.P99, m.Max)
	}
}

// TestMergeQuantilesExact is the acceptance-criteria proof: quantiles of
// Merge(snapA, snapB) are bit-identical to those of a single histogram fed
// the union of both observation sets. The quantile interpolation depends
// only on (bounds, per-bucket counts, n, min, max), all of which merge
// exactly.
func TestMergeQuantilesExact(t *testing.T) {
	cases := []struct {
		name   string
		bounds []float64
		a, b   []float64
	}{
		{
			name:   "disjoint ranges",
			bounds: []float64{0.001, 0.01, 0.1, 1},
			a:      []float64{0.0005, 0.002, 0.003, 0.02},
			b:      []float64{0.05, 0.25, 0.5, 2, 4},
		},
		{
			name:   "interleaved",
			bounds: []float64{0.25, 0.5, 1, 2, 4},
			a:      []float64{0.125, 0.375, 0.75, 1.5, 3},
			b:      []float64{0.1875, 0.4375, 0.875, 1.75, 3.5, 8},
		},
		{
			name:   "default latency buckets",
			bounds: nil,
			a:      []float64{0.0002, 0.0004, 0.0008, 0.004, 0.008},
			b:      []float64{0.002, 0.03, 0.06, 0.2, 0.75, 40},
		},
		{
			name:   "skewed sizes",
			bounds: []float64{1, 2, 4, 8},
			a:      []float64{0.5},
			b:      []float64{1.5, 1.5, 1.5, 3, 3, 5, 5, 5, 5, 9, 9, 9},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			snapA := feed(t, tc.bounds, tc.a)
			snapB := feed(t, tc.bounds, tc.b)
			union := feed(t, tc.bounds, append(append([]float64(nil), tc.a...), tc.b...))

			m, err := MergeHistogramSnapshots(snapA, snapB)
			if err != nil {
				t.Fatal(err)
			}
			if m.Count != union.Count || m.Min != union.Min || m.Max != union.Max {
				t.Fatalf("count/min/max diverge: merged %+v union %+v", m, union)
			}
			for i := range m.Buckets {
				if m.Buckets[i] != union.Buckets[i] {
					t.Fatalf("bucket %d: merged %+v union %+v", i, m.Buckets[i], union.Buckets[i])
				}
			}
			// Bit-identical, not approximately equal.
			if m.P50 != union.P50 || m.P95 != union.P95 || m.P99 != union.P99 {
				t.Fatalf("quantiles diverge: merged p50/p95/p99 = %v/%v/%v, union = %v/%v/%v",
					m.P50, m.P95, m.P99, union.P50, union.P95, union.P99)
			}
			// And independently of Snapshot: recompute via Quantile.
			for _, q := range []float64{0.5, 0.9, 0.95, 0.99, 1} {
				if m.Quantile(q) != union.Quantile(q) {
					t.Fatalf("Quantile(%g) diverges: %v vs %v", q, m.Quantile(q), union.Quantile(q))
				}
			}

			// Commutativity: b + a gives the same quantiles.
			rev, err := MergeHistogramSnapshots(snapB, snapA)
			if err != nil {
				t.Fatal(err)
			}
			if rev.P50 != m.P50 || rev.P95 != m.P95 || rev.P99 != m.P99 {
				t.Fatal("merge is not commutative on quantiles")
			}
		})
	}
}

func TestMergeExemplarKeepsSlowest(t *testing.T) {
	mk := func(traceID string, v float64) HistogramSnapshot {
		h := newHistogram([]float64{1, 2})
		h.ObserveExemplar(v, traceID)
		return h.Snapshot()
	}
	a := mk("aaaa", 0.5)
	b := mk("bbbb", 1.5)
	m, err := MergeHistogramSnapshots(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if m.Exemplar == nil || m.Exemplar.TraceID != "bbbb" {
		t.Fatalf("exemplar should follow the slower observation, got %+v", m.Exemplar)
	}
	rev, _ := MergeHistogramSnapshots(b, a)
	if rev.Exemplar.TraceID != "bbbb" {
		t.Fatal("exemplar merge is not commutative")
	}

	// Equal values: tie breaks deterministically on trace ID.
	x := mk("zzzz", 1.0)
	y := mk("mmmm", 1.0)
	m1, _ := MergeHistogramSnapshots(x, y)
	m2, _ := MergeHistogramSnapshots(y, x)
	if m1.Exemplar.TraceID != "mmmm" || m2.Exemplar.TraceID != "mmmm" {
		t.Fatalf("tie-break not deterministic: %q vs %q", m1.Exemplar.TraceID, m2.Exemplar.TraceID)
	}
}

func TestMergeSnapshotsCountersGaugesEvents(t *testing.T) {
	ra, rb := NewRegistry(), NewRegistry()
	ra.Counter("steps").Add(3)
	ra.Counter("only_a").Add(1)
	rb.Counter("steps").Add(4)
	rb.Counter("only_b").Add(7)
	ra.Gauge("goroutines").Set(10)
	rb.Gauge("goroutines").Set(12)
	ra.Histogram("rtt.seconds").Observe(0.25)
	rb.Histogram("rtt.seconds").Observe(0.75)

	t0 := time.Unix(100, 0)
	ra.Events().SetClock(func() time.Time { return t0 })
	rb.Events().SetClock(func() time.Time { return t0.Add(time.Second) })
	rb.Event("site-b", "later", nil)
	ra.Event("site-a", "earlier", nil)

	m, err := MergeSnapshots(ra.Snapshot(), rb.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	if m.Counters["steps"] != 7 || m.Counters["only_a"] != 1 || m.Counters["only_b"] != 7 {
		t.Fatalf("counters wrong: %+v", m.Counters)
	}
	if m.Gauges["goroutines"] != 22 {
		t.Fatalf("gauges should sum, got %v", m.Gauges["goroutines"])
	}
	h := m.Histograms["rtt.seconds"]
	if h.Count != 2 || h.Min != 0.25 || h.Max != 0.75 {
		t.Fatalf("histogram merge wrong: %+v", h)
	}
	if len(m.Events) != 2 || m.Events[0].Event != "earlier" || m.Events[1].Event != "later" {
		t.Fatalf("events should interleave by timestamp: %+v", m.Events)
	}

	// MergeAll folds any number of snapshots; zero snapshots are empty.
	all, err := MergeAll(ra.Snapshot(), rb.Snapshot(), NewRegistry().Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	if all.Counters["steps"] != 7 {
		t.Fatalf("MergeAll counters wrong: %+v", all.Counters)
	}
	empty, err := MergeAll()
	if err != nil || empty.Counters != nil {
		t.Fatalf("MergeAll() should be empty, got %+v, %v", empty, err)
	}
}

// TestConcurrentSnapshotWhileObserve exercises snapshot/merge concurrently
// with lock-free observers (including the exemplar CAS) under -race, and
// checks every intermediate snapshot is internally consistent.
func TestConcurrentSnapshotWhileObserve(t *testing.T) {
	h := newHistogram([]float64{0.001, 0.01, 0.1, 1})
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed float64) {
			defer wg.Done()
			v := seed
			for {
				select {
				case <-stop:
					return
				default:
				}
				h.ObserveExemplar(v, "deadbeefdeadbeefdeadbeefdeadbeef")
				v *= 1.7
				if v > 2 {
					v = seed
				}
			}
		}(0.0005 * float64(w+1))
	}
	deadline := time.Now().Add(100 * time.Millisecond)
	var prev HistogramSnapshot
	for time.Now().Before(deadline) {
		s := h.Snapshot()
		if s.Count < prev.Count {
			t.Errorf("count went backwards: %d -> %d", prev.Count, s.Count)
			break
		}
		// Cumulative buckets must be monotone in LE.
		for i := 1; i < len(s.Buckets); i++ {
			if s.Buckets[i].Count < s.Buckets[i-1].Count {
				t.Errorf("non-monotone cumulative buckets: %+v", s.Buckets)
			}
		}
		if m, err := MergeHistogramSnapshots(prev, s); err != nil {
			t.Errorf("merge during churn: %v", err)
		} else if prev.Count > 0 && m.Count != prev.Count+s.Count {
			t.Errorf("merged count %d != %d + %d", m.Count, prev.Count, s.Count)
		}
		prev = s
	}
	close(stop)
	wg.Wait()
}
