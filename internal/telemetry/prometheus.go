package telemetry

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// PrometheusContentType is the content type of the text exposition format
// WritePrometheus emits.
const PrometheusContentType = "text/plain; version=0.0.4; charset=utf-8"

// WritePrometheus renders a snapshot in the Prometheus text exposition
// format (version 0.0.4): counters as `_total` counters, gauges as gauges,
// and histograms as the conventional cumulative `_bucket{le=...}` series
// plus `_sum` and `_count`. Metric names are sanitized to the Prometheus
// charset (dots become underscores). Events are not exported — they are a
// log, not a metric.
func WritePrometheus(w io.Writer, s Snapshot) error {
	return writePrometheus(w, s, "")
}

// WritePrometheusLabeled renders a snapshot with a constant label pair on
// every series (e.g. site="ann-arbor"), and without # TYPE comments: the
// obs aggregator emits the merged fleet snapshot via WritePrometheus
// first, then each site's snapshot through this, so per-site series of
// the same metric ride under the fleet series' single TYPE declaration.
// An empty labelKey falls back to WritePrometheus.
func WritePrometheusLabeled(w io.Writer, s Snapshot, labelKey, labelValue string) error {
	if labelKey == "" {
		return WritePrometheus(w, s)
	}
	return writePrometheus(w, s, fmt.Sprintf("%s=%q", promName(labelKey), labelValue))
}

func writePrometheus(w io.Writer, s Snapshot, labels string) error {
	// brace renders the label set for a plain series ({site="a"}) and
	// bucket joins it with the le label ({site="a",le="0.01"}).
	brace := ""
	if labels != "" {
		brace = "{" + labels + "}"
	}
	bucket := func(le string) string {
		if labels == "" {
			return fmt.Sprintf("{le=%q}", le)
		}
		return fmt.Sprintf("{%s,le=%q}", labels, le)
	}
	typeLine := func(pn, kind string) error {
		if labels != "" {
			return nil // TYPE already declared by the unlabeled fleet series
		}
		_, err := fmt.Fprintf(w, "# TYPE %s %s\n", pn, kind)
		return err
	}
	for _, name := range s.CounterNames() {
		pn := promName(name) + "_total"
		if err := typeLine(pn, "counter"); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s%s %d\n", pn, brace, s.Counters[name]); err != nil {
			return err
		}
	}
	gauges := make([]string, 0, len(s.Gauges))
	for n := range s.Gauges {
		gauges = append(gauges, n)
	}
	sort.Strings(gauges)
	for _, name := range gauges {
		pn := promName(name)
		if err := typeLine(pn, "gauge"); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s%s %s\n", pn, brace, promFloat(s.Gauges[name])); err != nil {
			return err
		}
	}
	for _, name := range s.HistogramNames() {
		h := s.Histograms[name]
		pn := promName(name)
		if err := typeLine(pn, "histogram"); err != nil {
			return err
		}
		for _, b := range h.Buckets {
			if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", pn, bucket(promFloat(b.LE)), b.Count); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", pn, bucket("+Inf"), h.Count); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_sum%s %s\n%s_count%s %d\n", pn, brace, promFloat(h.Sum), pn, brace, h.Count); err != nil {
			return err
		}
	}
	return nil
}

// promName maps a registry metric name onto the Prometheus name charset
// [a-zA-Z0-9_:]; anything else (notably the dots this codebase uses as
// separators) becomes an underscore.
func promName(name string) string {
	var b strings.Builder
	b.Grow(len(name))
	for i, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == ':':
			b.WriteRune(r)
		case r >= '0' && r <= '9':
			if i == 0 {
				b.WriteByte('_')
			}
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

func promFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
