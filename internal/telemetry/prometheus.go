package telemetry

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// PrometheusContentType is the content type of the text exposition format
// WritePrometheus emits.
const PrometheusContentType = "text/plain; version=0.0.4; charset=utf-8"

// WritePrometheus renders a snapshot in the Prometheus text exposition
// format (version 0.0.4): counters as `_total` counters, gauges as gauges,
// and histograms as the conventional cumulative `_bucket{le=...}` series
// plus `_sum` and `_count`. Metric names are sanitized to the Prometheus
// charset (dots become underscores). Events are not exported — they are a
// log, not a metric.
func WritePrometheus(w io.Writer, s Snapshot) error {
	for _, name := range s.CounterNames() {
		pn := promName(name) + "_total"
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", pn, pn, s.Counters[name]); err != nil {
			return err
		}
	}
	gauges := make([]string, 0, len(s.Gauges))
	for n := range s.Gauges {
		gauges = append(gauges, n)
	}
	sort.Strings(gauges)
	for _, name := range gauges {
		pn := promName(name)
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %s\n", pn, pn, promFloat(s.Gauges[name])); err != nil {
			return err
		}
	}
	for _, name := range s.HistogramNames() {
		h := s.Histograms[name]
		pn := promName(name)
		if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", pn); err != nil {
			return err
		}
		for _, b := range h.Buckets {
			if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", pn, promFloat(b.LE), b.Count); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", pn, h.Count); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_sum %s\n%s_count %d\n", pn, promFloat(h.Sum), pn, h.Count); err != nil {
			return err
		}
	}
	return nil
}

// promName maps a registry metric name onto the Prometheus name charset
// [a-zA-Z0-9_:]; anything else (notably the dots this codebase uses as
// separators) becomes an underscore.
func promName(name string) string {
	var b strings.Builder
	b.Grow(len(name))
	for i, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == ':':
			b.WriteRune(r)
		case r >= '0' && r <= '9':
			if i == 0 {
				b.WriteByte('_')
			}
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

func promFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
