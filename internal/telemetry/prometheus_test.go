package telemetry

import (
	"strings"
	"testing"
)

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("ntcp.server.proposed").Add(7)
	r.Gauge("nsds.subscribers").Set(3)
	h := r.Histogram("ogsi.echo.seconds", 0.001, 0.01)
	h.Observe(0.0005)
	h.Observe(0.005)
	h.Observe(2)

	var b strings.Builder
	if err := WritePrometheus(&b, r.Snapshot()); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE ntcp_server_proposed_total counter\nntcp_server_proposed_total 7\n",
		"# TYPE nsds_subscribers gauge\nnsds_subscribers 3\n",
		"# TYPE ogsi_echo_seconds histogram\n",
		`ogsi_echo_seconds_bucket{le="0.001"} 1`,
		`ogsi_echo_seconds_bucket{le="0.01"} 2`,
		`ogsi_echo_seconds_bucket{le="+Inf"} 3`,
		"ogsi_echo_seconds_sum 2.0055\n",
		"ogsi_echo_seconds_count 3\n",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestWritePrometheusLabeled(t *testing.T) {
	r := NewRegistry()
	r.Counter("ntcp.server.proposed").Add(7)
	r.Gauge("nsds.subscribers").Set(3)
	h := r.Histogram("ogsi.echo.seconds", 0.001, 0.01)
	h.Observe(0.0005)
	h.Observe(2)

	var b strings.Builder
	if err := WritePrometheusLabeled(&b, r.Snapshot(), "site", "mini-most"); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"ntcp_server_proposed_total{site=\"mini-most\"} 7\n",
		"nsds_subscribers{site=\"mini-most\"} 3\n",
		`ogsi_echo_seconds_bucket{site="mini-most",le="0.001"} 1`,
		`ogsi_echo_seconds_bucket{site="mini-most",le="+Inf"} 2`,
		"ogsi_echo_seconds_sum{site=\"mini-most\"} 2.0005\n",
		"ogsi_echo_seconds_count{site=\"mini-most\"} 2\n",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("labeled exposition missing %q:\n%s", want, out)
		}
	}
	// Labeled series never re-declare TYPE — the fleet series already did.
	if strings.Contains(out, "# TYPE") {
		t.Fatalf("labeled exposition must not emit TYPE comments:\n%s", out)
	}
	// Empty label key falls back to the plain exposition.
	b.Reset()
	if err := WritePrometheusLabeled(&b, r.Snapshot(), "", ""); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "# TYPE ntcp_server_proposed_total counter") {
		t.Fatalf("empty-key fallback should match WritePrometheus:\n%s", b.String())
	}
}

func TestPromName(t *testing.T) {
	cases := map[string]string{
		"ntcp.server.proposed": "ntcp_server_proposed",
		"already_fine:x9":      "already_fine:x9",
		"9starts.with.digit":   "_9starts_with_digit",
		"odd-chars e/f":        "odd_chars_e_f",
	}
	for in, want := range cases {
		if got := promName(in); got != want {
			t.Fatalf("promName(%q) = %q, want %q", in, got, want)
		}
	}
}
