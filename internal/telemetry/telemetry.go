// Package telemetry is the observability substrate of the stack: a
// dependency-free metrics registry (atomic counters, gauges, fixed-bucket
// latency histograms with quantile snapshots) plus a bounded in-memory
// structured event log. Every service wires into a Registry so that a
// distributed experiment can be observed while it runs — the capability the
// paper's §3.4 account of the MOST public run leans on (NSDS streaming,
// per-step monitoring, post-hoc diagnosis of the step-1493 failure) — and so
// that performance work has latency histograms to steer by.
//
// All hot-path operations (Counter.Inc, Histogram.Observe) are lock-free;
// the registry mutex is only taken when a metric is first created or a
// snapshot is taken.
package telemetry

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n < 0 is ignored — counters never go down).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an instantaneous value (queue depth, open connections).
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adjusts the gauge by delta.
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// DefaultLatencyBuckets are the upper bounds (seconds) used when a histogram
// is created without explicit buckets: 100 µs to 30 s, roughly 1-2.5-5 per
// decade — wide enough to cover a LAN control loop and a congested WAN step.
var DefaultLatencyBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005,
	0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30,
}

// Histogram is a fixed-bucket histogram of float64 observations (seconds,
// for latencies). Observations are lock-free; quantiles are estimated at
// snapshot time by linear interpolation within the bucket that holds the
// target rank.
type Histogram struct {
	bounds []float64      // sorted upper bounds; an implicit +Inf bucket follows
	counts []atomic.Int64 // len(bounds)+1
	count  atomic.Int64
	sum    atomic.Uint64 // float64 bits, CAS-accumulated
	min    atomic.Uint64 // float64 bits
	max    atomic.Uint64 // float64 bits
	// ex is the retained exemplar: the trace of the slowest recent
	// observation (see ObserveExemplar). Best-effort and lock-free.
	ex atomic.Pointer[Exemplar]
}

// Exemplar links a histogram to the trace of its slowest recent
// observation, so a fleet-wide p99 resolves directly to a `mostctl trace`
// timeline of the offending step.
type Exemplar struct {
	TraceID string    `json:"trace_id"`
	Value   float64   `json:"value"`
	TS      time.Time `json:"ts"`
}

// ExemplarTTL bounds how long an exemplar shields itself from replacement:
// after this long even a faster observation takes over, so the exemplar
// tracks the slowest *recent* observation rather than the all-time worst.
const ExemplarTTL = time.Minute

func newHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		bounds = DefaultLatencyBuckets
	}
	b := append([]float64(nil), bounds...)
	sort.Float64s(b)
	h := &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
	h.min.Store(math.Float64bits(math.Inf(1)))
	h.max.Store(math.Float64bits(math.Inf(-1)))
	return h
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			break
		}
	}
	for {
		old := h.min.Load()
		if v >= math.Float64frombits(old) || h.min.CompareAndSwap(old, math.Float64bits(v)) {
			break
		}
	}
	for {
		old := h.max.Load()
		if v <= math.Float64frombits(old) || h.max.CompareAndSwap(old, math.Float64bits(v)) {
			break
		}
	}
}

// ObserveDuration records a duration in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// ObserveExemplar records one value and, when traceID is non-empty, offers
// it as the histogram's exemplar. The exemplar is replaced when the new
// observation is at least as slow as the retained one, or when the
// retained one has aged past ExemplarTTL. The fast path (a value smaller
// than a fresh exemplar) costs one atomic load and one clock read on top
// of Observe; replacement allocates.
func (h *Histogram) ObserveExemplar(v float64, traceID string) {
	h.Observe(v)
	if traceID == "" {
		return
	}
	for {
		cur := h.ex.Load()
		if cur != nil && v < cur.Value && time.Since(cur.TS) < ExemplarTTL {
			return
		}
		if h.ex.CompareAndSwap(cur, &Exemplar{TraceID: traceID, Value: v, TS: time.Now()}) {
			return
		}
	}
}

// ObserveDurationExemplar is ObserveExemplar for a duration in seconds.
func (h *Histogram) ObserveDurationExemplar(d time.Duration, traceID string) {
	h.ObserveExemplar(d.Seconds(), traceID)
}

// Time runs fn and records its wall-clock duration.
func (h *Histogram) Time(fn func()) {
	start := time.Now()
	fn()
	h.ObserveDuration(time.Since(start))
}

// BucketCount is one cumulative histogram bucket: the number of
// observations less than or equal to the upper bound LE.
type BucketCount struct {
	LE    float64 `json:"le"`
	Count int64   `json:"count"`
}

// HistogramSnapshot is a point-in-time summary of a histogram. It carries
// the full cumulative bucket vector, so two snapshots with identical bounds
// can be merged exactly (see MergeHistogramSnapshots) and quantiles can be
// recomputed from the merged vector — never averaged.
type HistogramSnapshot struct {
	Count int64   `json:"count"`
	Sum   float64 `json:"sum"`
	Min   float64 `json:"min"`
	Max   float64 `json:"max"`
	Mean  float64 `json:"mean"`
	P50   float64 `json:"p50"`
	P95   float64 `json:"p95"`
	P99   float64 `json:"p99"`
	// Buckets are the cumulative counts at each finite upper bound. The
	// implicit +Inf bucket is Count (and is omitted here so the snapshot
	// stays encodable by encoding/json, which rejects infinities).
	Buckets []BucketCount `json:"buckets,omitempty"`
	// Exemplar is the trace of the slowest recent observation, when the
	// histogram was fed through ObserveExemplar.
	Exemplar *Exemplar `json:"exemplar,omitempty"`
}

// Snapshot summarizes the histogram. Quantiles are bucket-interpolated; the
// overflow (+Inf) bucket is clamped to the observed maximum.
func (h *Histogram) Snapshot() HistogramSnapshot {
	n := h.count.Load()
	if n == 0 {
		return HistogramSnapshot{}
	}
	counts := make([]int64, len(h.counts))
	for i := range h.counts {
		counts[i] = h.counts[i].Load()
	}
	snap := HistogramSnapshot{
		Count: n,
		Sum:   math.Float64frombits(h.sum.Load()),
		Min:   math.Float64frombits(h.min.Load()),
		Max:   math.Float64frombits(h.max.Load()),
	}
	snap.Mean = snap.Sum / float64(n)
	snap.P50 = bucketQuantile(h.bounds, counts, n, snap.Min, snap.Max, 0.50)
	snap.P95 = bucketQuantile(h.bounds, counts, n, snap.Min, snap.Max, 0.95)
	snap.P99 = bucketQuantile(h.bounds, counts, n, snap.Min, snap.Max, 0.99)
	snap.Buckets = make([]BucketCount, len(h.bounds))
	var cum int64
	for i, b := range h.bounds {
		cum += counts[i]
		snap.Buckets[i] = BucketCount{LE: b, Count: cum}
	}
	snap.Exemplar = h.ex.Load()
	return snap
}

// bucketQuantile interpolates quantile q from a per-bucket count vector
// (len(bounds)+1, the last entry being the +Inf overflow). It depends only
// on (bounds, counts, min, max), so a quantile computed from a merged
// snapshot's bucket vector is bit-identical to one computed from a single
// histogram fed the union of observations — the property the obs
// aggregator's exact fleet-wide percentiles rest on.
func bucketQuantile(bounds []float64, counts []int64, n int64, min, max float64, q float64) float64 {
	rank := q * float64(n)
	var seen float64
	for i, c := range counts {
		if c == 0 {
			continue
		}
		lo := min
		if i > 0 && bounds[i-1] > lo {
			// The bucket's lower bound, but never below the observed
			// minimum — with all mass in one high bucket (e.g. a single
			// observation, or everything in the +Inf overflow) the bucket
			// edge would otherwise drag the estimate under Min.
			lo = bounds[i-1]
		}
		hi := max
		if i < len(bounds) && bounds[i] < hi {
			hi = bounds[i]
		}
		if lo > hi {
			lo = hi
		}
		if seen+float64(c) >= rank {
			frac := (rank - seen) / float64(c)
			return lo + (hi-lo)*frac
		}
		seen += float64(c)
	}
	return max
}

// perBucket reconstructs the per-bucket count vector (including the +Inf
// overflow) and bounds from a snapshot's cumulative buckets.
func (s HistogramSnapshot) perBucket() (bounds []float64, counts []int64) {
	bounds = make([]float64, len(s.Buckets))
	counts = make([]int64, len(s.Buckets)+1)
	var prev int64
	for i, b := range s.Buckets {
		bounds[i] = b.LE
		counts[i] = b.Count - prev
		prev = b.Count
	}
	counts[len(s.Buckets)] = s.Count - prev // +Inf overflow
	return bounds, counts
}

// Quantile recomputes quantile q from the snapshot's bucket vector using
// the same interpolation as Histogram.Snapshot. Zero-count snapshots
// return 0.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 {
		return 0
	}
	bounds, counts := s.perBucket()
	return bucketQuantile(bounds, counts, s.Count, s.Min, s.Max, q)
}

// Event is one structured event-log entry.
type Event struct {
	TS        time.Time      `json:"ts"`
	Component string         `json:"component"`
	Event     string         `json:"event"`
	Fields    map[string]any `json:"fields,omitempty"`
}

// EventLog is a bounded ring buffer of events: cheap to append, and old
// entries are overwritten rather than growing without bound — the post-hoc
// diagnosis trail for a long run.
type EventLog struct {
	mu      sync.Mutex
	ring    []Event
	next    int
	wrapped bool
	dropped int64
	clock   func() time.Time
}

// NewEventLog returns a ring holding the last capacity events (min 1).
func NewEventLog(capacity int) *EventLog {
	if capacity < 1 {
		capacity = 1
	}
	return &EventLog{ring: make([]Event, capacity), clock: time.Now}
}

// SetClock overrides the time source (tests).
func (l *EventLog) SetClock(clock func() time.Time) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.clock = clock
}

// Record appends an event, evicting the oldest when full. The fields map
// is copied before it is retained, so a caller that reuses or keeps
// mutating its map after recording cannot race the log's readers or
// retroactively rewrite history.
func (l *EventLog) Record(component, event string, fields map[string]any) {
	var copied map[string]any
	if len(fields) > 0 {
		copied = make(map[string]any, len(fields))
		for k, v := range fields {
			copied[k] = v
		}
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.wrapped {
		l.dropped++
	}
	l.ring[l.next] = Event{TS: l.clock(), Component: component, Event: event, Fields: copied}
	l.next++
	if l.next == len(l.ring) {
		l.next = 0
		l.wrapped = true
	}
}

// Events returns the retained events, oldest first.
func (l *EventLog) Events() []Event {
	l.mu.Lock()
	defer l.mu.Unlock()
	if !l.wrapped {
		return append([]Event(nil), l.ring[:l.next]...)
	}
	out := make([]Event, 0, len(l.ring))
	out = append(out, l.ring[l.next:]...)
	out = append(out, l.ring[:l.next]...)
	return out
}

// Dropped returns how many events were evicted by the ring.
func (l *EventLog) Dropped() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.dropped
}

// Registry is a named collection of metrics plus an event log. Metric
// lookups intern by name, so call sites may re-resolve per use or cache the
// returned pointer; both are safe and the cached pointer is lock-free.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	events   *EventLog
}

// DefaultEventCapacity bounds a registry's event ring.
const DefaultEventCapacity = 512

// NewRegistry returns an empty registry with a DefaultEventCapacity ring.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
		events:   NewEventLog(DefaultEventCapacity),
	}
}

// OrNew returns r, or a fresh private registry when r is nil — the idiom
// components use so telemetry is always safe to record, wired or not.
func OrNew(r *Registry) *Registry {
	if r != nil {
		return r
	}
	return NewRegistry()
}

// Counter interns and returns the named counter.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge interns and returns the named gauge.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram interns and returns the named histogram. Bounds apply only on
// first creation; omit them for DefaultLatencyBuckets.
func (r *Registry) Histogram(name string, bounds ...float64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = newHistogram(bounds)
		r.hists[name] = h
	}
	return h
}

// Event appends to the registry's event log.
func (r *Registry) Event(component, event string, fields map[string]any) {
	r.events.Record(component, event, fields)
}

// Events exposes the registry's event log.
func (r *Registry) Events() *EventLog { return r.events }

// Snapshot is a point-in-time JSON-ready view of a registry.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters,omitempty"`
	Gauges     map[string]float64           `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
	Events     []Event                      `json:"events,omitempty"`
}

// Snapshot captures every metric and the retained events.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for k, v := range r.hists {
		hists[k] = v
	}
	r.mu.Unlock()

	snap := Snapshot{
		Counters:   make(map[string]int64, len(counters)),
		Gauges:     make(map[string]float64, len(gauges)),
		Histograms: make(map[string]HistogramSnapshot, len(hists)),
		Events:     r.events.Events(),
	}
	for k, c := range counters {
		snap.Counters[k] = c.Value()
	}
	for k, g := range gauges {
		snap.Gauges[k] = g.Value()
	}
	for k, h := range hists {
		snap.Histograms[k] = h.Snapshot()
	}
	return snap
}

// CounterNames returns the sorted counter names of a snapshot — the stable
// iteration order pretty-printers want.
func (s Snapshot) CounterNames() []string {
	names := make([]string, 0, len(s.Counters))
	for n := range s.Counters {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// HistogramNames returns the sorted histogram names of a snapshot.
func (s Snapshot) HistogramNames() []string {
	names := make([]string, 0, len(s.Histograms))
	for n := range s.Histograms {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
