package telemetry

import (
	"encoding/json"
	"math"
	"sync"
	"testing"
	"time"
)

func TestCounterAndGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("reqs")
	c.Inc()
	c.Add(4)
	c.Add(-10) // ignored: counters are monotone
	if got := r.Counter("reqs").Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	g := r.Gauge("depth")
	g.Set(3)
	g.Add(2.5)
	if got := r.Gauge("depth").Value(); got != 5.5 {
		t.Fatalf("gauge = %g, want 5.5", got)
	}
}

func TestRegistryInternsByName(t *testing.T) {
	r := NewRegistry()
	if r.Counter("x") != r.Counter("x") {
		t.Fatal("counter not interned")
	}
	if r.Histogram("h") != r.Histogram("h") {
		t.Fatal("histogram not interned")
	}
	if r.Gauge("g") != r.Gauge("g") {
		t.Fatal("gauge not interned")
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h := newHistogram(nil)
	// 1000 observations uniform on (0, 1]: quantiles should land near their
	// nominal values despite bucketing.
	for i := 1; i <= 1000; i++ {
		h.Observe(float64(i) / 1000)
	}
	s := h.Snapshot()
	if s.Count != 1000 {
		t.Fatalf("count = %d", s.Count)
	}
	if math.Abs(s.Mean-0.5005) > 1e-9 {
		t.Fatalf("mean = %g", s.Mean)
	}
	if s.Min != 0.001 || s.Max != 1.0 {
		t.Fatalf("min/max = %g/%g", s.Min, s.Max)
	}
	checks := []struct {
		got, want, tol float64
	}{
		{s.P50, 0.5, 0.1},
		{s.P95, 0.95, 0.1},
		{s.P99, 0.99, 0.05},
	}
	for _, c := range checks {
		if math.Abs(c.got-c.want) > c.tol {
			t.Errorf("quantile = %g, want %g±%g", c.got, c.want, c.tol)
		}
	}
	if s.P50 > s.P95 || s.P95 > s.P99 || s.P99 > s.Max {
		t.Fatalf("quantiles not monotone: %+v", s)
	}
}

func TestHistogramOverflowBucketClampsToMax(t *testing.T) {
	h := newHistogram([]float64{0.01})
	h.Observe(5) // beyond every bound: overflow bucket
	h.Observe(7)
	s := h.Snapshot()
	if s.P99 > s.Max {
		t.Fatalf("p99 %g exceeds max %g", s.P99, s.Max)
	}
	if s.Max != 7 {
		t.Fatalf("max = %g", s.Max)
	}
}

func TestHistogramEmptySnapshot(t *testing.T) {
	var s HistogramSnapshot = newHistogram(nil).Snapshot()
	if s.Count != 0 || s.P99 != 0 || s.Min != 0 {
		t.Fatalf("empty snapshot = %+v", s)
	}
}

func TestEventLogRingEviction(t *testing.T) {
	l := NewEventLog(3)
	fixed := time.Date(2004, 6, 1, 0, 0, 0, 0, time.UTC)
	l.SetClock(func() time.Time { return fixed })
	for _, name := range []string{"a", "b", "c", "d", "e"} {
		l.Record("test", name, nil)
	}
	evs := l.Events()
	if len(evs) != 3 {
		t.Fatalf("retained %d events, want 3", len(evs))
	}
	for i, want := range []string{"c", "d", "e"} {
		if evs[i].Event != want {
			t.Fatalf("events = %v", evs)
		}
	}
	if l.Dropped() != 2 {
		t.Fatalf("dropped = %d, want 2", l.Dropped())
	}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("ntcp.executed").Add(3)
	r.Histogram("rtt.seconds").Observe(0.042)
	r.Event("ntcp", "executed", map[string]any{"name": "step-1"})
	raw, err := json.Marshal(r.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if back.Counters["ntcp.executed"] != 3 {
		t.Fatalf("counters = %v", back.Counters)
	}
	if back.Histograms["rtt.seconds"].Count != 1 {
		t.Fatalf("histograms = %v", back.Histograms)
	}
	if len(back.Events) != 1 || back.Events[0].Event != "executed" {
		t.Fatalf("events = %v", back.Events)
	}
}

func TestOrNew(t *testing.T) {
	r := NewRegistry()
	if OrNew(r) != r {
		t.Fatal("OrNew should pass through non-nil registries")
	}
	if OrNew(nil) == nil {
		t.Fatal("OrNew(nil) should allocate")
	}
}

func TestRegistryConcurrentUse(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				r.Counter("c").Inc()
				r.Histogram("h").Observe(float64(i) / 500)
				r.Gauge("g").Add(1)
				r.Event("w", "tick", nil)
			}
		}()
	}
	done := make(chan struct{})
	go func() { // concurrent snapshots must be safe too
		for i := 0; i < 50; i++ {
			_ = r.Snapshot()
		}
		close(done)
	}()
	wg.Wait()
	<-done
	if r.Counter("c").Value() != 4000 {
		t.Fatalf("counter = %d", r.Counter("c").Value())
	}
	if s := r.Histogram("h").Snapshot(); s.Count != 4000 {
		t.Fatalf("histogram count = %d", s.Count)
	}
}

func TestSnapshotSortedNames(t *testing.T) {
	r := NewRegistry()
	r.Counter("b").Inc()
	r.Counter("a").Inc()
	r.Histogram("z").Observe(1)
	r.Histogram("y").Observe(1)
	s := r.Snapshot()
	cn := s.CounterNames()
	if len(cn) != 2 || cn[0] != "a" || cn[1] != "b" {
		t.Fatalf("counter names = %v", cn)
	}
	hn := s.HistogramNames()
	if len(hn) != 2 || hn[0] != "y" || hn[1] != "z" {
		t.Fatalf("histogram names = %v", hn)
	}
}

func TestEventLogRecordCopiesFields(t *testing.T) {
	l := NewEventLog(8)
	fields := map[string]any{"step": 1, "site": "uiuc"}
	l.Record("coord", "fault", fields)
	fields["step"] = 99
	delete(fields, "site")
	evs := l.Events()
	if len(evs) != 1 {
		t.Fatalf("retained %d events", len(evs))
	}
	if evs[0].Fields["step"] != 1 || evs[0].Fields["site"] != "uiuc" {
		t.Fatalf("recorded fields were mutated through the caller's map: %v", evs[0].Fields)
	}

	// Under -race: a caller that keeps writing its map after recording must
	// not race readers of the log.
	shared := map[string]any{"n": 0}
	l.Record("coord", "reuse", shared)
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < 1000; i++ {
			shared["n"] = i
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 1000; i++ {
			for _, ev := range l.Events() {
				_ = ev.Fields["n"]
			}
		}
	}()
	wg.Wait()
}

func TestHistogramQuantileSingleObservation(t *testing.T) {
	h := newHistogram(nil)
	h.Observe(0.003) // interior bucket (0.0025, 0.005]
	s := h.Snapshot()
	if s.P50 != 0.003 || s.P95 != 0.003 || s.P99 != 0.003 {
		t.Fatalf("single observation quantiles = p50=%g p95=%g p99=%g, want all 0.003",
			s.P50, s.P95, s.P99)
	}
}

func TestHistogramQuantileAllMassInOverflow(t *testing.T) {
	h := newHistogram([]float64{0.01})
	h.Observe(5)
	h.Observe(7)
	s := h.Snapshot()
	// Every observation is beyond the last bound; the estimate must stay
	// inside [Min, Max], not sag toward the 0.01 bucket edge.
	if s.P50 < s.Min || s.P50 > s.Max {
		t.Fatalf("p50 = %g outside [%g, %g]", s.P50, s.Min, s.Max)
	}
	if s.P50 != 6 {
		t.Fatalf("p50 = %g, want midpoint 6", s.P50)
	}
	if s.P99 < s.Min || s.P99 > s.Max {
		t.Fatalf("p99 = %g outside [%g, %g]", s.P99, s.Min, s.Max)
	}
}

func TestHistogramQuantileBelowFirstBound(t *testing.T) {
	h := newHistogram(nil) // first bound 0.0001
	h.Observe(0.00001)
	h.Observe(0.00002)
	s := h.Snapshot()
	for _, q := range []float64{s.P50, s.P95, s.P99} {
		if q < s.Min || q > s.Max {
			t.Fatalf("quantile %g outside [%g, %g]", q, s.Min, s.Max)
		}
	}
	if s.Max != 0.00002 {
		t.Fatalf("max = %g", s.Max)
	}
}

func TestHistogramSnapshotBuckets(t *testing.T) {
	h := newHistogram([]float64{1, 2, 5})
	for _, v := range []float64{0.5, 1.5, 1.7, 3, 10} {
		h.Observe(v)
	}
	s := h.Snapshot()
	want := []BucketCount{{LE: 1, Count: 1}, {LE: 2, Count: 3}, {LE: 5, Count: 4}}
	if len(s.Buckets) != len(want) {
		t.Fatalf("buckets = %+v", s.Buckets)
	}
	for i, b := range want {
		if s.Buckets[i] != b {
			t.Fatalf("bucket %d = %+v, want %+v", i, s.Buckets[i], b)
		}
	}
	// +Inf is implied by Count: one observation (10) beyond the last bound.
	if s.Count != 5 {
		t.Fatalf("count = %d", s.Count)
	}
}
