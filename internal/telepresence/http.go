package telepresence

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"
)

// Handler exposes a camera registry over HTTP — the "at least one
// accessible camera at each site … operated remotely" capability of §3.4:
//
//	GET  /cameras                     → camera names
//	GET  /cameras/<name>/pose         → current PTZ
//	POST /cameras/<name>/move         → {"pan":dp,"tilt":dt,"zoom":dz} relative move
//	POST /cameras/<name>/home         → neutral pose
//	GET  /cameras/<name>/frame?w=&h=  → one synthetic frame (JSON)
type Handler struct {
	Registry *Registry
}

// NewHandler wraps a registry.
func NewHandler(r *Registry) *Handler { return &Handler{Registry: r} }

func (h *Handler) writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// ServeHTTP routes the camera API.
func (h *Handler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path == "/cameras" {
		h.writeJSON(w, 200, h.Registry.Names())
		return
	}
	rest, ok := strings.CutPrefix(r.URL.Path, "/cameras/")
	if !ok {
		h.writeJSON(w, 404, map[string]string{"error": "not found"})
		return
	}
	name, op, ok := strings.Cut(rest, "/")
	if !ok {
		h.writeJSON(w, 404, map[string]string{"error": "want /cameras/<name>/<op>"})
		return
	}
	cam, err := h.Registry.Get(name)
	if err != nil {
		h.writeJSON(w, 404, map[string]string{"error": err.Error()})
		return
	}
	switch {
	case op == "pose" && r.Method == http.MethodGet:
		h.writeJSON(w, 200, cam.Pose())
	case op == "move" && r.Method == http.MethodPost:
		var d struct{ Pan, Tilt, Zoom float64 }
		if err := json.NewDecoder(r.Body).Decode(&d); err != nil {
			h.writeJSON(w, 400, map[string]string{"error": err.Error()})
			return
		}
		h.writeJSON(w, 200, cam.Move(d.Pan, d.Tilt, d.Zoom))
	case op == "home" && r.Method == http.MethodPost:
		cam.Home()
		h.writeJSON(w, 200, cam.Pose())
	case op == "frame" && r.Method == http.MethodGet:
		q := r.URL.Query()
		width := intParam(q.Get("w"), 64)
		height := intParam(q.Get("h"), 16)
		frame, err := cam.Capture(width, height)
		if err != nil {
			h.writeJSON(w, 400, map[string]string{"error": err.Error()})
			return
		}
		h.writeJSON(w, 200, frame)
	default:
		h.writeJSON(w, 404, map[string]string{"error": fmt.Sprintf("no op %q", op)})
	}
}

func intParam(s string, def int) int {
	if s == "" {
		return def
	}
	n, err := strconv.Atoi(s)
	if err != nil {
		return def
	}
	return n
}
