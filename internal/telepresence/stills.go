package telepresence

import (
	"fmt"
	"io"
	"strings"
)

// §5, University of Minnesota: "This experiment will also use video and
// still images as data, using the NEESgrid framework to trigger still image
// capture." TriggeredCapture turns a camera into a data source: each
// trigger captures a frame, encodes it as a portable graymap (PGM — the
// simplest archival raster format), and hands it to a sink (typically a
// repository ingest).

// EncodePGM writes a frame as binary PGM (P5).
func EncodePGM(w io.Writer, f *Frame) error {
	if f.Width <= 0 || f.Height <= 0 || len(f.Pixels) != f.Width*f.Height {
		return fmt.Errorf("telepresence: malformed frame %dx%d with %d pixels", f.Width, f.Height, len(f.Pixels))
	}
	if _, err := fmt.Fprintf(w, "P5\n%d %d\n255\n", f.Width, f.Height); err != nil {
		return err
	}
	_, err := w.Write(f.Pixels)
	return err
}

// DecodePGM reads a binary PGM written by EncodePGM.
func DecodePGM(r io.Reader) (*Frame, error) {
	var magic string
	var w, h, maxval int
	if _, err := fmt.Fscanf(r, "%s\n%d %d\n%d\n", &magic, &w, &h, &maxval); err != nil {
		return nil, fmt.Errorf("telepresence: pgm header: %w", err)
	}
	if magic != "P5" || maxval != 255 || w <= 0 || h <= 0 {
		return nil, fmt.Errorf("telepresence: unsupported pgm %q maxval %d", magic, maxval)
	}
	pixels := make([]byte, w*h)
	if _, err := io.ReadFull(r, pixels); err != nil {
		return nil, fmt.Errorf("telepresence: pgm pixels: %w", err)
	}
	return &Frame{Width: w, Height: h, Pixels: pixels}, nil
}

// StillSink receives one captured still: its suggested name, encoded PGM
// bytes, and capture metadata.
type StillSink func(name string, pgm []byte, meta map[string]any) error

// TriggeredCapture binds a camera to a sink.
type TriggeredCapture struct {
	Camera *Camera
	// Width, Height set the capture raster; defaults 64×16.
	Width, Height int
	Sink          StillSink

	captured int
}

// Trigger captures one still and delivers it. The trigger context (e.g.
// experiment step) travels in the metadata.
func (tc *TriggeredCapture) Trigger(step int, t float64) error {
	if tc.Sink == nil {
		return fmt.Errorf("telepresence: triggered capture has no sink")
	}
	w, h := tc.Width, tc.Height
	if w <= 0 {
		w = 64
	}
	if h <= 0 {
		h = 16
	}
	frame, err := tc.Camera.Capture(w, h)
	if err != nil {
		return err
	}
	var buf strings.Builder
	if err := EncodePGM(&buf, frame); err != nil {
		return err
	}
	tc.captured++
	name := fmt.Sprintf("%s/still-%06d.pgm", tc.Camera.Name, frame.Seq)
	meta := map[string]any{
		"camera": tc.Camera.Name,
		"step":   step,
		"t":      t,
		"pan":    frame.Pose.Pan,
		"tilt":   frame.Pose.Tilt,
		"zoom":   frame.Pose.Zoom,
		"width":  frame.Width,
		"height": frame.Height,
	}
	return tc.Sink(name, []byte(buf.String()), meta)
}

// Captured returns how many stills have been taken.
func (tc *TriggeredCapture) Captured() int { return tc.captured }
