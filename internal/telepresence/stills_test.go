package telepresence

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"neesgrid/internal/nfms"
	"neesgrid/internal/repo"
)

func TestPGMRoundTrip(t *testing.T) {
	c := NewCamera("cam", func() float64 { return 0.02 })
	f, err := c.Capture(48, 12)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := EncodePGM(&buf, f); err != nil {
		t.Fatal(err)
	}
	got, err := DecodePGM(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Width != 48 || got.Height != 12 || !bytes.Equal(got.Pixels, f.Pixels) {
		t.Fatal("pgm round trip corrupt")
	}
}

func TestPGMErrors(t *testing.T) {
	if err := EncodePGM(&bytes.Buffer{}, &Frame{Width: 2, Height: 2, Pixels: []byte{1}}); err == nil {
		t.Fatal("malformed frame encoded")
	}
	if _, err := DecodePGM(bytes.NewBufferString("P6\n2 2\n255\nxxxx")); err == nil {
		t.Fatal("wrong magic accepted")
	}
	if _, err := DecodePGM(bytes.NewBufferString("P5\n2 2\n255\nx")); err == nil {
		t.Fatal("short pixel data accepted")
	}
}

func TestTriggeredCaptureDeliversStills(t *testing.T) {
	deflection := 0.0
	cam := NewCamera("uminn-cam1", func() float64 { return deflection })
	var names []string
	var metas []map[string]any
	tc := &TriggeredCapture{
		Camera: cam,
		Sink: func(name string, pgm []byte, meta map[string]any) error {
			if _, err := DecodePGM(bytes.NewReader(pgm)); err != nil {
				return err
			}
			names = append(names, name)
			metas = append(metas, meta)
			return nil
		},
	}
	for step := 0; step < 3; step++ {
		deflection = float64(step) * 0.01
		if err := tc.Trigger(step, float64(step)*0.5); err != nil {
			t.Fatal(err)
		}
	}
	if tc.Captured() != 3 || len(names) != 3 {
		t.Fatalf("captured %d stills", tc.Captured())
	}
	if names[0] == names[1] {
		t.Fatal("still names not unique")
	}
	if metas[2]["step"] != 2 || metas[2]["camera"] != "uminn-cam1" {
		t.Fatalf("metadata = %v", metas[2])
	}
}

func TestTriggeredCaptureNeedsSink(t *testing.T) {
	tc := &TriggeredCapture{Camera: NewCamera("c", nil)}
	if err := tc.Trigger(0, 0); err == nil {
		t.Fatal("trigger without sink accepted")
	}
}

// Stills flow into the repository like any other experiment data — image
// file + metadata record, downloadable afterwards.
func TestStillsArchivedToRepository(t *testing.T) {
	r, err := repo.New("/O=NEES/CN=repo")
	if err != nil {
		t.Fatal(err)
	}
	store := t.TempDir()
	staging := t.TempDir()
	cam := NewCamera("uminn-cam1", func() float64 { return 0.015 })
	tc := &TriggeredCapture{
		Camera: cam,
		Sink: func(name string, pgm []byte, meta map[string]any) error {
			local := filepath.Join(staging, filepath.Base(name))
			if err := os.WriteFile(local, pgm, 0o644); err != nil {
				return err
			}
			_, err := r.IngestFile("/O=NEES/CN=uminn", "uminn-test", "uminn",
				"stills/"+name, local,
				nfms.Replica{Transport: "local", Path: filepath.Join(store, filepath.Base(name))},
				nil)
			return err
		},
	}
	for i := 0; i < 2; i++ {
		if err := tc.Trigger(i, float64(i)); err != nil {
			t.Fatal(err)
		}
	}
	entries := r.Files.List()
	if len(entries) != 2 {
		t.Fatalf("catalog = %d entries", len(entries))
	}
	dst := filepath.Join(t.TempDir(), "back.pgm")
	if err := r.Fetch(entries[0].Logical, dst); err != nil {
		t.Fatal(err)
	}
	raw, _ := os.ReadFile(dst)
	frame, err := DecodePGM(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if frame.Width == 0 {
		t.Fatal("archived still unreadable")
	}
}
