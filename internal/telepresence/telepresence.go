// Package telepresence emulates the MOST telepresence system (paper §2.2,
// §3.4): remotely operable cameras — pan/tilt/zoom control plus a frame
// feed — that gave the 130 remote participants "a general sense of lab
// activity". Frames are synthetic renderings of the rig state (a 1-D scene
// of specimen deflection) rather than video, which exercises the same
// control and distribution paths.
package telepresence

import (
	"fmt"
	"math"
	"sync"
	"time"
)

// PTZ is a camera pose.
type PTZ struct {
	Pan  float64 `json:"pan"`  // degrees, ±170
	Tilt float64 `json:"tilt"` // degrees, ±90
	Zoom float64 `json:"zoom"` // 1..10
}

// Limits bound camera motion.
var (
	panLimit  = 170.0
	tiltLimit = 90.0
	zoomMin   = 1.0
	zoomMax   = 10.0
)

// Frame is one synthetic camera frame.
type Frame struct {
	Camera string    `json:"camera"`
	Seq    uint64    `json:"seq"`
	At     time.Time `json:"at"`
	Pose   PTZ       `json:"pose"`
	// Pixels is a small synthetic luminance raster of the scene.
	Width  int    `json:"width"`
	Height int    `json:"height"`
	Pixels []byte `json:"pixels"`
}

// Camera is one remotely operable camera pointed at a rig.
type Camera struct {
	Name string
	// Scene returns the current specimen deflection (m) the camera "sees".
	Scene func() float64

	mu   sync.Mutex
	pose PTZ
	seq  uint64
}

// NewCamera creates a camera with a neutral pose.
func NewCamera(name string, scene func() float64) *Camera {
	return &Camera{Name: name, Scene: scene, pose: PTZ{Zoom: 1}}
}

// Pose returns the current pose.
func (c *Camera) Pose() PTZ {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.pose
}

// Move applies a relative pan/tilt/zoom command, clamped to limits.
func (c *Camera) Move(dPan, dTilt, dZoom float64) PTZ {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.pose.Pan = clamp(c.pose.Pan+dPan, -panLimit, panLimit)
	c.pose.Tilt = clamp(c.pose.Tilt+dTilt, -tiltLimit, tiltLimit)
	c.pose.Zoom = clamp(c.pose.Zoom+dZoom, zoomMin, zoomMax)
	return c.pose
}

// Home returns the camera to its neutral pose.
func (c *Camera) Home() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.pose = PTZ{Zoom: 1}
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// Capture renders a synthetic frame: a w×h luminance raster with a bright
// column whose position tracks the specimen deflection, scaled by zoom.
// Remote observers literally watch the specimen move.
func (c *Camera) Capture(w, h int) (*Frame, error) {
	if w < 4 || h < 4 {
		return nil, fmt.Errorf("telepresence: frame %dx%d too small", w, h)
	}
	c.mu.Lock()
	pose := c.pose
	c.seq++
	seq := c.seq
	c.mu.Unlock()

	deflection := 0.0
	if c.Scene != nil {
		deflection = c.Scene()
	}
	// Map deflection (±10 cm at zoom 1) to a column position.
	visible := 0.1 / pose.Zoom
	x := (deflection/visible + 1) / 2 * float64(w-1)
	col := int(math.Round(clamp(x, 0, float64(w-1))))

	pixels := make([]byte, w*h)
	for row := 0; row < h; row++ {
		for cx := 0; cx < w; cx++ {
			d := cx - col
			if d < 0 {
				d = -d
			}
			v := 255 - 60*d
			if v < 16 {
				v = 16 // background
			}
			pixels[row*w+cx] = byte(v)
		}
	}
	return &Frame{
		Camera: c.Name, Seq: seq, At: time.Now(), Pose: pose,
		Width: w, Height: h, Pixels: pixels,
	}, nil
}

// Registry holds the cameras of an experiment (MOST had at least one at
// each physical site).
type Registry struct {
	mu      sync.Mutex
	cameras map[string]*Camera
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{cameras: make(map[string]*Camera)}
}

// Add registers a camera.
func (r *Registry) Add(c *Camera) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.cameras[c.Name]; dup {
		return fmt.Errorf("telepresence: duplicate camera %q", c.Name)
	}
	r.cameras[c.Name] = c
	return nil
}

// Get looks a camera up.
func (r *Registry) Get(name string) (*Camera, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.cameras[name]
	if !ok {
		return nil, fmt.Errorf("telepresence: no camera %q", name)
	}
	return c, nil
}

// Names lists registered cameras.
func (r *Registry) Names() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, 0, len(r.cameras))
	for n := range r.cameras {
		out = append(out, n)
	}
	return out
}
