package telepresence

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestMoveClampsToLimits(t *testing.T) {
	c := NewCamera("uiuc-cam1", nil)
	pose := c.Move(500, -500, 100)
	if pose.Pan != 170 || pose.Tilt != -90 || pose.Zoom != 10 {
		t.Fatalf("pose = %+v", pose)
	}
	pose = c.Move(-1000, 1000, -100)
	if pose.Pan != -170 || pose.Tilt != 90 || pose.Zoom != 1 {
		t.Fatalf("pose = %+v", pose)
	}
	c.Home()
	if p := c.Pose(); p.Pan != 0 || p.Tilt != 0 || p.Zoom != 1 {
		t.Fatalf("home pose = %+v", p)
	}
}

func TestCaptureTracksScene(t *testing.T) {
	deflection := 0.0
	c := NewCamera("cam", func() float64 { return deflection })
	centerFrame, err := c.Capture(64, 8)
	if err != nil {
		t.Fatal(err)
	}
	deflection = 0.05 // half the visible range to the right
	rightFrame, err := c.Capture(64, 8)
	if err != nil {
		t.Fatal(err)
	}
	if brightest(centerFrame) >= brightest(rightFrame) {
		t.Fatalf("bright column did not move right: %d -> %d",
			brightest(centerFrame), brightest(rightFrame))
	}
	if rightFrame.Seq != centerFrame.Seq+1 {
		t.Fatal("frame sequence not monotonic")
	}
	if len(rightFrame.Pixels) != 64*8 {
		t.Fatalf("raster size = %d", len(rightFrame.Pixels))
	}
}

func TestZoomNarrowsView(t *testing.T) {
	deflection := 0.04
	c := NewCamera("cam", func() float64 { return deflection })
	wide, _ := c.Capture(64, 8)
	c.Move(0, 0, 9) // zoom to 10x: ±1 cm visible; 4 cm deflection pegs right
	tight, _ := c.Capture(64, 8)
	if brightest(tight) <= brightest(wide) {
		t.Fatalf("zoom did not magnify deflection: %d vs %d", brightest(tight), brightest(wide))
	}
	if brightest(tight) != 63 {
		t.Fatalf("pegged column = %d, want 63", brightest(tight))
	}
}

func brightest(f *Frame) int {
	best, bestV := 0, byte(0)
	for x := 0; x < f.Width; x++ {
		if v := f.Pixels[x]; v > bestV {
			bestV, best = v, x
		}
	}
	return best
}

func TestCaptureValidation(t *testing.T) {
	c := NewCamera("cam", nil)
	if _, err := c.Capture(1, 1); err == nil {
		t.Fatal("tiny frame accepted")
	}
	// Nil scene renders a centered column.
	f, err := c.Capture(65, 8)
	if err != nil {
		t.Fatal(err)
	}
	if got := brightest(f); got != 32 {
		t.Fatalf("nil scene column = %d, want 32", got)
	}
}

func TestRegistry(t *testing.T) {
	r := NewRegistry()
	if err := r.Add(NewCamera("uiuc-cam1", nil)); err != nil {
		t.Fatal(err)
	}
	if err := r.Add(NewCamera("uiuc-cam1", nil)); err == nil {
		t.Fatal("duplicate camera accepted")
	}
	if _, err := r.Get("uiuc-cam1"); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Get("nope"); err == nil {
		t.Fatal("missing camera accepted")
	}
	if got := r.Names(); len(got) != 1 {
		t.Fatalf("names = %v", got)
	}
}

func TestHTTPCameraControl(t *testing.T) {
	reg := NewRegistry()
	deflection := 0.0
	_ = reg.Add(NewCamera("uiuc-cam1", func() float64 { return deflection }))
	ts := httptest.NewServer(NewHandler(reg))
	defer ts.Close()

	// List cameras.
	resp, err := http.Get(ts.URL + "/cameras")
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	_ = json.NewDecoder(resp.Body).Decode(&names)
	_ = resp.Body.Close()
	if len(names) != 1 || names[0] != "uiuc-cam1" {
		t.Fatalf("cameras = %v", names)
	}

	// Move (relative) and read back pose.
	resp, err = http.Post(ts.URL+"/cameras/uiuc-cam1/move", "application/json",
		strings.NewReader(`{"pan":10,"tilt":-5,"zoom":2}`))
	if err != nil {
		t.Fatal(err)
	}
	var pose PTZ
	_ = json.NewDecoder(resp.Body).Decode(&pose)
	_ = resp.Body.Close()
	if pose.Pan != 10 || pose.Tilt != -5 || pose.Zoom != 3 {
		t.Fatalf("pose = %+v", pose)
	}

	// Frame capture tracks the specimen.
	deflection = 0.03
	resp, err = http.Get(ts.URL + "/cameras/uiuc-cam1/frame?w=32&h=4")
	if err != nil {
		t.Fatal(err)
	}
	var frame Frame
	_ = json.NewDecoder(resp.Body).Decode(&frame)
	_ = resp.Body.Close()
	if frame.Width != 32 || len(frame.Pixels) != 32*4 {
		t.Fatalf("frame = %dx%d, %d pixels", frame.Width, frame.Height, len(frame.Pixels))
	}

	// Home.
	resp, _ = http.Post(ts.URL+"/cameras/uiuc-cam1/home", "application/json", nil)
	_ = json.NewDecoder(resp.Body).Decode(&pose)
	_ = resp.Body.Close()
	if pose.Pan != 0 || pose.Zoom != 1 {
		t.Fatalf("home pose = %+v", pose)
	}

	// Errors: unknown camera, unknown op, bad frame size.
	for _, path := range []string{"/cameras/nope/pose", "/cameras/uiuc-cam1/frob", "/nope"} {
		resp, _ := http.Get(ts.URL + path)
		if resp.StatusCode != 404 {
			t.Fatalf("%s -> %d", path, resp.StatusCode)
		}
		_ = resp.Body.Close()
	}
	resp, _ = http.Get(ts.URL + "/cameras/uiuc-cam1/frame?w=1&h=1")
	if resp.StatusCode != 400 {
		t.Fatalf("tiny frame -> %d", resp.StatusCode)
	}
	_ = resp.Body.Close()
}
