package trace

import (
	"encoding/json"
	"net/http"
	"net/http/pprof"
	"strconv"
)

// Handler serves the recorder's retained spans as a JSON array — the
// unsigned GET /trace endpoint every container exposes. Like /metrics it
// is read-only operational telemetry: span names, IDs and durations carry
// no experiment payload, so requiring a signed envelope would only stop
// dashboards and mostctl from polling it.
//
// Query parameters:
//
//	trace=<32 hex>  only spans of that trace
//	limit=<n>       only the n most recent matching spans
func Handler(rec *Recorder) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "GET only", http.StatusMethodNotAllowed)
			return
		}
		var spans []SpanData
		if id := r.URL.Query().Get("trace"); id != "" {
			spans = rec.Trace(id)
		} else {
			spans = rec.Spans()
		}
		if ls := r.URL.Query().Get("limit"); ls != "" {
			if n, err := strconv.Atoi(ls); err == nil && n >= 0 && n < len(spans) {
				spans = spans[len(spans)-n:]
			}
		}
		if spans == nil {
			spans = []SpanData{}
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(spans)
	})
}

// DebugMux builds the opt-in debug mux the CLIs serve behind their -pprof
// flag: net/http/pprof profile endpoints plus GET /trace when a recorder
// is supplied. Kept here so ntcpd, nsdsd and coordinator share one wiring.
func DebugMux(rec *Recorder) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	if rec != nil {
		mux.Handle("/trace", Handler(rec))
	}
	return mux
}
