package trace

import "sync"

// DefaultCapacity is the recorder ring size when none is given: enough
// for a few hundred MOST time steps' worth of spans per process while
// keeping the per-container memory footprint bounded.
const DefaultCapacity = 8192

// Recorder is a bounded ring of finished spans, the per-process span
// sink. Like telemetry.EventLog it favours cheap writes over retention:
// Record is a short critical section with no allocation beyond the ring
// slot, and when the ring wraps the oldest spans are dropped (counted,
// never blocking the hot path).
type Recorder struct {
	mu      sync.Mutex
	ring    []SpanData
	next    int
	wrapped bool
	dropped int64
}

// NewRecorder builds a recorder keeping the most recent capacity spans
// (DefaultCapacity when capacity <= 0).
func NewRecorder(capacity int) *Recorder {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Recorder{ring: make([]SpanData, capacity)}
}

// Record appends a finished span, evicting the oldest when full. Safe on
// a nil recorder (drops).
func (r *Recorder) Record(sd SpanData) {
	if r == nil {
		return
	}
	r.mu.Lock()
	if r.wrapped {
		r.dropped++
	}
	r.ring[r.next] = sd
	r.next++
	if r.next == len(r.ring) {
		r.next = 0
		r.wrapped = true
	}
	r.mu.Unlock()
}

// Spans returns the retained spans, oldest first.
func (r *Recorder) Spans() []SpanData {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.wrapped {
		return append([]SpanData(nil), r.ring[:r.next]...)
	}
	out := make([]SpanData, 0, len(r.ring))
	out = append(out, r.ring[r.next:]...)
	return append(out, r.ring[:r.next]...)
}

// Trace returns the retained spans of one trace (hex ID), oldest first.
func (r *Recorder) Trace(traceID string) []SpanData {
	var out []SpanData
	for _, sd := range r.Spans() {
		if sd.TraceID == traceID {
			out = append(out, sd)
		}
	}
	return out
}

// Dropped reports how many spans the ring has evicted.
func (r *Recorder) Dropped() int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped
}
