// Package trace is a W3C-traceparent-style distributed tracing subsystem
// for the emulated grid: 128-bit trace IDs, 64-bit span IDs, propagation
// through context.Context inside a process and through the signed OGSI
// envelope between processes, and a lock-cheap bounded recorder per
// process that the unsigned GET /trace endpoint and the MOST archive read
// back.
//
// The paper's step-latency breakdown (coordinator compute, per-site NTCP
// round trips, DAQ readback) was assembled by hand from per-site logs;
// this package makes that correlation a first-class service: every MOST
// time step is one trace whose spans cross the coordinator, each site's
// container, and the streaming fan-out.
//
// All span-side APIs are nil-safe: a nil *Tracer returns a nil *Span from
// Start, and every *Span method no-ops on nil, so call sites wire tracing
// unconditionally and pay nothing when it is off.
package trace

import (
	"context"
	crand "crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Span kinds, mirroring the W3C/OpenTelemetry vocabulary. A MOST step's
// NTCP round trip shows up as a KindClient span on the coordinator paired
// with a KindServer span on the site; everything else is KindInternal.
const (
	KindInternal = "internal"
	KindClient   = "client"
	KindServer   = "server"
)

// TraceID is a 128-bit trace identifier (all-zero means absent).
type TraceID [16]byte

// SpanID is a 64-bit span identifier (all-zero means absent).
type SpanID [8]byte

// IsValid reports whether the ID is non-zero.
func (t TraceID) IsValid() bool { return t != TraceID{} }

// IsValid reports whether the ID is non-zero.
func (s SpanID) IsValid() bool { return s != SpanID{} }

// String returns the 32-char lowercase hex form ("" when invalid).
func (t TraceID) String() string {
	if !t.IsValid() {
		return ""
	}
	return hex.EncodeToString(t[:])
}

// String returns the 16-char lowercase hex form ("" when invalid).
func (s SpanID) String() string {
	if !s.IsValid() {
		return ""
	}
	return hex.EncodeToString(s[:])
}

// idState seeds the splitmix64 sequence that generates IDs. A single
// atomic add per ID keeps generation lock-free on the per-transaction hot
// path; the process-random seed makes collisions across emulated sites
// vanishingly unlikely.
var idState atomic.Uint64

func init() {
	var seed [8]byte
	if _, err := crand.Read(seed[:]); err != nil {
		// Fall back to wall time; IDs stay unique within the process.
		binary.LittleEndian.PutUint64(seed[:], uint64(time.Now().UnixNano()))
	}
	idState.Store(binary.LittleEndian.Uint64(seed[:]))
}

// nextRand returns the next value of the process-wide splitmix64 stream.
func nextRand() uint64 {
	x := idState.Add(0x9E3779B97F4A7C15)
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}

// NewTraceID returns a fresh non-zero 128-bit trace ID.
func NewTraceID() TraceID {
	var t TraceID
	for !t.IsValid() {
		binary.BigEndian.PutUint64(t[:8], nextRand())
		binary.BigEndian.PutUint64(t[8:], nextRand())
	}
	return t
}

// NewSpanID returns a fresh non-zero 64-bit span ID.
func NewSpanID() SpanID {
	var s SpanID
	for !s.IsValid() {
		binary.BigEndian.PutUint64(s[:], nextRand())
	}
	return s
}

// SpanContext is the propagated part of a span: enough to parent remote
// children and to render the cross-process timeline.
type SpanContext struct {
	TraceID TraceID
	SpanID  SpanID
}

// IsValid reports whether both IDs are present.
func (sc SpanContext) IsValid() bool { return sc.TraceID.IsValid() && sc.SpanID.IsValid() }

// Traceparent renders the W3C traceparent header form,
// "00-<32 hex trace>-<16 hex span>-01" ("" when invalid). The flags byte
// is always 01 (sampled): the recorder ring is the sampling policy here.
func (sc SpanContext) Traceparent() string {
	if !sc.IsValid() {
		return ""
	}
	return fmt.Sprintf("00-%s-%s-01", sc.TraceID, sc.SpanID)
}

var errBadTraceparent = errors.New("trace: malformed traceparent")

// ParseTraceparent parses the W3C traceparent form produced by
// SpanContext.Traceparent. Unknown versions are accepted as long as the
// field layout matches version 00; zero IDs are rejected.
func ParseTraceparent(s string) (SpanContext, error) {
	var sc SpanContext
	if len(s) != 55 || s[2] != '-' || s[35] != '-' || s[52] != '-' {
		return sc, errBadTraceparent
	}
	if _, err := hex.Decode(sc.TraceID[:], []byte(s[3:35])); err != nil {
		return sc, errBadTraceparent
	}
	if _, err := hex.Decode(sc.SpanID[:], []byte(s[36:52])); err != nil {
		return sc, errBadTraceparent
	}
	if !sc.IsValid() {
		return sc, errBadTraceparent
	}
	return sc, nil
}

// SpanEvent is a timestamped annotation on a span — faultnet uses these
// to make injected delays and cuts visible in the timeline.
type SpanEvent struct {
	TS     time.Time `json:"ts"`
	Name   string    `json:"name"`
	Detail string    `json:"detail,omitempty"`
}

// SpanData is the recorded (and JSON-serialized) form of a finished span.
// IDs are hex strings so the JSON is self-describing and greppable.
type SpanData struct {
	TraceID string            `json:"trace_id"`
	SpanID  string            `json:"span_id"`
	Parent  string            `json:"parent_id,omitempty"`
	Service string            `json:"service,omitempty"`
	Name    string            `json:"name"`
	Kind    string            `json:"kind,omitempty"`
	Start   time.Time         `json:"start"`
	End     time.Time         `json:"end"`
	Attrs   map[string]string `json:"attrs,omitempty"`
	Events  []SpanEvent       `json:"events,omitempty"`
	Err     string            `json:"error,omitempty"`
}

// Duration is the span's wall-clock extent.
func (sd SpanData) Duration() time.Duration { return sd.End.Sub(sd.Start) }

// Span is a live, in-progress span. All methods are safe on a nil
// receiver and safe for concurrent use (faultnet annotates from transport
// goroutines while the owner sets attributes).
type Span struct {
	tracer *Tracer
	sc     SpanContext

	mu    sync.Mutex
	data  SpanData
	ended bool
}

// Context returns the span's propagation context (zero when nil).
func (s *Span) Context() SpanContext {
	if s == nil {
		return SpanContext{}
	}
	return s.sc
}

// SetAttr attaches a key/value attribute.
func (s *Span) SetAttr(key, value string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ended {
		return
	}
	if s.data.Attrs == nil {
		s.data.Attrs = make(map[string]string, 4)
	}
	s.data.Attrs[key] = value
}

// Annotate appends a timestamped event to the span.
func (s *Span) Annotate(name, detail string) {
	if s == nil {
		return
	}
	now := s.tracer.now()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ended {
		return
	}
	s.data.Events = append(s.data.Events, SpanEvent{TS: now, Name: name, Detail: detail})
}

// SetError marks the span failed. A nil error is ignored.
func (s *Span) SetError(err error) {
	if s == nil || err == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ended {
		return
	}
	s.data.Err = err.Error()
}

// End finishes the span and hands it to the recorder. Ending twice is a
// no-op; attribute/event calls after End are dropped.
func (s *Span) End() {
	if s == nil {
		return
	}
	now := s.tracer.now()
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	s.data.End = now
	sd := s.data
	s.mu.Unlock()
	s.tracer.rec.Record(sd)
}

// Tracer creates spans for one service (one process-side identity: a site
// name, "coordinator", "nsds", ...) and records them into a Recorder.
type Tracer struct {
	service string
	rec     *Recorder
	clock   func() time.Time
}

// NewTracer builds a tracer recording into rec (a default-capacity
// recorder is created when rec is nil).
func NewTracer(service string, rec *Recorder) *Tracer {
	if rec == nil {
		rec = NewRecorder(0)
	}
	return &Tracer{service: service, rec: rec, clock: time.Now}
}

// Service returns the service name spans are attributed to.
func (t *Tracer) Service() string {
	if t == nil {
		return ""
	}
	return t.service
}

// Recorder returns the tracer's span sink (nil for a nil tracer).
func (t *Tracer) Recorder() *Recorder {
	if t == nil {
		return nil
	}
	return t.rec
}

// SetClock overrides the time source (tests only).
func (t *Tracer) SetClock(clock func() time.Time) {
	if t != nil && clock != nil {
		t.clock = clock
	}
}

func (t *Tracer) now() time.Time {
	if t == nil || t.clock == nil {
		return time.Now()
	}
	return t.clock()
}

// Start opens a span named name with the given kind. The parent is the
// live span in ctx, or the remote SpanContext installed by
// ContextWithRemote; with neither, a fresh trace begins. The returned
// context carries the new span. A nil tracer returns (ctx, nil).
func (t *Tracer) Start(ctx context.Context, name, kind string) (context.Context, *Span) {
	if t == nil {
		return ctx, nil
	}
	parent := SpanContextFromContext(ctx)
	sc := SpanContext{TraceID: parent.TraceID, SpanID: NewSpanID()}
	if !sc.TraceID.IsValid() {
		sc.TraceID = NewTraceID()
	}
	s := &Span{
		tracer: t,
		sc:     sc,
		data: SpanData{
			TraceID: sc.TraceID.String(),
			SpanID:  sc.SpanID.String(),
			Parent:  parent.SpanID.String(),
			Service: t.service,
			Name:    name,
			Kind:    kind,
			Start:   t.now(),
		},
	}
	return context.WithValue(ctx, spanKey{}, s), s
}

// RecordSpan records an already-measured child span of parent — the
// retroactive form used when the work happened before its trace context
// was readable (GSI chain verification runs before the envelope payload,
// and thus the traceparent, can be decoded) or on a goroutine detached
// from the request context (plugin execution). attrs is copied. A nil
// tracer or invalid parent drops the record.
func (t *Tracer) RecordSpan(parent SpanContext, name, kind string, start, end time.Time, attrs map[string]string) {
	if t == nil || !parent.IsValid() {
		return
	}
	sd := SpanData{
		TraceID: parent.TraceID.String(),
		SpanID:  NewSpanID().String(),
		Parent:  parent.SpanID.String(),
		Service: t.service,
		Name:    name,
		Kind:    kind,
		Start:   start,
		End:     end,
	}
	if len(attrs) > 0 {
		sd.Attrs = make(map[string]string, len(attrs))
		for k, v := range attrs {
			sd.Attrs[k] = v
		}
	}
	t.rec.Record(sd)
}

type spanKey struct{}
type remoteKey struct{}

// ContextWithRemote installs a remote parent SpanContext (decoded from an
// incoming traceparent) so the next Start parents under the caller's span.
func ContextWithRemote(ctx context.Context, sc SpanContext) context.Context {
	if !sc.IsValid() {
		return ctx
	}
	return context.WithValue(ctx, remoteKey{}, sc)
}

// SpanFromContext returns the live span carried by ctx, or nil.
func SpanFromContext(ctx context.Context) *Span {
	if ctx == nil {
		return nil
	}
	s, _ := ctx.Value(spanKey{}).(*Span)
	return s
}

// SpanContextFromContext returns the propagation context in effect: the
// live span's if one is present, else any remote parent, else zero.
func SpanContextFromContext(ctx context.Context) SpanContext {
	if ctx == nil {
		return SpanContext{}
	}
	if s := SpanFromContext(ctx); s != nil {
		return s.sc
	}
	sc, _ := ctx.Value(remoteKey{}).(SpanContext)
	return sc
}
