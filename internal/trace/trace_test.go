package trace

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

func TestIDGeneration(t *testing.T) {
	seen := make(map[string]bool)
	for i := 0; i < 1000; i++ {
		id := NewTraceID()
		if !id.IsValid() {
			t.Fatal("zero trace id")
		}
		s := id.String()
		if len(s) != 32 {
			t.Fatalf("trace id %q not 32 hex chars", s)
		}
		if seen[s] {
			t.Fatalf("duplicate trace id %s", s)
		}
		seen[s] = true
	}
	if NewSpanID() == NewSpanID() {
		t.Fatal("consecutive span ids collided")
	}
	var zero TraceID
	if zero.String() != "" {
		t.Fatal("zero trace id should render empty")
	}
}

func TestTraceparentRoundTrip(t *testing.T) {
	sc := SpanContext{TraceID: NewTraceID(), SpanID: NewSpanID()}
	tp := sc.Traceparent()
	if len(tp) != 55 {
		t.Fatalf("traceparent %q not 55 chars", tp)
	}
	back, err := ParseTraceparent(tp)
	if err != nil {
		t.Fatal(err)
	}
	if back != sc {
		t.Fatalf("round trip %+v != %+v", back, sc)
	}
	if (SpanContext{}).Traceparent() != "" {
		t.Fatal("invalid context should render empty traceparent")
	}
	for _, bad := range []string{
		"",
		"00-short-short-01",
		"00-zzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzz-zzzzzzzzzzzzzzzz-01",
		"00-00000000000000000000000000000000-0000000000000000-01",
		tp[:54],
		tp + "0",
	} {
		if _, err := ParseTraceparent(bad); err == nil {
			t.Fatalf("ParseTraceparent(%q) accepted", bad)
		}
	}
}

func TestStartPropagatesParent(t *testing.T) {
	tr := NewTracer("svc", NewRecorder(16))
	ctx, root := tr.Start(context.Background(), "root", KindInternal)
	_, child := tr.Start(ctx, "child", KindClient)
	if child.Context().TraceID != root.Context().TraceID {
		t.Fatal("child not in parent's trace")
	}
	child.End()
	root.End()
	spans := tr.Recorder().Spans()
	if len(spans) != 2 {
		t.Fatalf("recorded %d spans", len(spans))
	}
	// child ended first, so spans[0] is the child.
	if spans[0].Parent != root.Context().SpanID.String() {
		t.Fatalf("child parent %q != root span %q", spans[0].Parent, root.Context().SpanID)
	}
	if spans[1].Parent != "" {
		t.Fatalf("root has parent %q", spans[1].Parent)
	}
	if spans[0].Service != "svc" || spans[0].Kind != KindClient {
		t.Fatalf("child metadata %+v", spans[0])
	}
}

func TestRemoteParent(t *testing.T) {
	remote := SpanContext{TraceID: NewTraceID(), SpanID: NewSpanID()}
	tr := NewTracer("server", NewRecorder(4))
	ctx := ContextWithRemote(context.Background(), remote)
	if got := SpanContextFromContext(ctx); got != remote {
		t.Fatalf("remote context %+v", got)
	}
	_, span := tr.Start(ctx, "serve", KindServer)
	if span.Context().TraceID != remote.TraceID {
		t.Fatal("server span not in remote trace")
	}
	span.End()
	sd := tr.Recorder().Spans()[0]
	if sd.Parent != remote.SpanID.String() {
		t.Fatalf("server span parent %q != remote span %q", sd.Parent, remote.SpanID)
	}
}

func TestNilSafety(t *testing.T) {
	var tr *Tracer
	ctx, span := tr.Start(context.Background(), "x", KindInternal)
	if span != nil {
		t.Fatal("nil tracer produced a span")
	}
	if ctx == nil {
		t.Fatal("nil tracer dropped the context")
	}
	// All nil-span methods must be no-ops, not panics.
	span.SetAttr("k", "v")
	span.Annotate("e", "d")
	span.SetError(errors.New("boom"))
	span.End()
	if span.Context().IsValid() {
		t.Fatal("nil span has a context")
	}
	tr.RecordSpan(SpanContext{}, "n", KindInternal, time.Now(), time.Now(), nil)
	if tr.Recorder() != nil || tr.Service() != "" {
		t.Fatal("nil tracer accessors")
	}
	var rec *Recorder
	rec.Record(SpanData{})
	if rec.Spans() != nil || rec.Dropped() != 0 {
		t.Fatal("nil recorder accessors")
	}
	if SpanFromContext(context.Background()) != nil {
		t.Fatal("span from empty context")
	}
}

func TestSpanAttrsEventsError(t *testing.T) {
	tr := NewTracer("svc", NewRecorder(4))
	_, span := tr.Start(context.Background(), "op", KindInternal)
	span.SetAttr("tx", "step-1")
	span.Annotate("faultnet.delay", "25ms")
	span.SetError(errors.New("injected"))
	span.End()
	// Post-End mutation must not land.
	span.SetAttr("late", "1")
	span.Annotate("late", "")
	span.End()
	spans := tr.Recorder().Spans()
	if len(spans) != 1 {
		t.Fatalf("End twice recorded %d spans", len(spans))
	}
	sd := spans[0]
	if sd.Attrs["tx"] != "step-1" || sd.Attrs["late"] != "" {
		t.Fatalf("attrs %+v", sd.Attrs)
	}
	if len(sd.Events) != 1 || sd.Events[0].Name != "faultnet.delay" {
		t.Fatalf("events %+v", sd.Events)
	}
	if sd.Err != "injected" {
		t.Fatalf("err %q", sd.Err)
	}
	if sd.End.Before(sd.Start) {
		t.Fatal("span ends before it starts")
	}
}

func TestRecordSpanRetroactive(t *testing.T) {
	tr := NewTracer("site", NewRecorder(4))
	parent := SpanContext{TraceID: NewTraceID(), SpanID: NewSpanID()}
	start := time.Now().Add(-time.Millisecond)
	end := time.Now()
	attrs := map[string]string{"identity": "coordinator"}
	tr.RecordSpan(parent, "gsi.verify", KindInternal, start, end, attrs)
	attrs["identity"] = "mutated-after-call"
	spans := tr.Recorder().Spans()
	if len(spans) != 1 {
		t.Fatalf("recorded %d", len(spans))
	}
	sd := spans[0]
	if sd.Parent != parent.SpanID.String() || sd.TraceID != parent.TraceID.String() {
		t.Fatalf("lineage %+v", sd)
	}
	if sd.Attrs["identity"] != "coordinator" {
		t.Fatal("attrs not defensively copied")
	}
	// Invalid parent drops silently.
	tr.RecordSpan(SpanContext{}, "orphan", KindInternal, start, end, nil)
	if len(tr.Recorder().Spans()) != 1 {
		t.Fatal("orphan span recorded")
	}
}

func TestRecorderRingWraps(t *testing.T) {
	rec := NewRecorder(4)
	for i := 0; i < 10; i++ {
		rec.Record(SpanData{Name: fmt.Sprintf("s%d", i)})
	}
	spans := rec.Spans()
	if len(spans) != 4 {
		t.Fatalf("retained %d", len(spans))
	}
	for i, sd := range spans {
		if want := fmt.Sprintf("s%d", 6+i); sd.Name != want {
			t.Fatalf("slot %d = %q, want %q (oldest-first order broken)", i, sd.Name, want)
		}
	}
	if rec.Dropped() != 6 {
		t.Fatalf("dropped %d, want 6", rec.Dropped())
	}
}

func TestRecorderTraceFilter(t *testing.T) {
	rec := NewRecorder(8)
	a, b := NewTraceID().String(), NewTraceID().String()
	rec.Record(SpanData{TraceID: a, Name: "one"})
	rec.Record(SpanData{TraceID: b, Name: "two"})
	rec.Record(SpanData{TraceID: a, Name: "three"})
	got := rec.Trace(a)
	if len(got) != 2 || got[0].Name != "one" || got[1].Name != "three" {
		t.Fatalf("filter returned %+v", got)
	}
}

func TestConcurrentSpans(t *testing.T) {
	tr := NewTracer("svc", NewRecorder(64))
	ctx, root := tr.Start(context.Background(), "root", KindInternal)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, sp := tr.Start(ctx, "child", KindInternal)
			sp.SetAttr("i", fmt.Sprint(i))
			root.Annotate("spawn", fmt.Sprint(i))
			sp.End()
		}(i)
	}
	wg.Wait()
	root.End()
	if got := len(tr.Recorder().Spans()); got != 9 {
		t.Fatalf("recorded %d spans", got)
	}
}

func TestHandler(t *testing.T) {
	rec := NewRecorder(8)
	tid := NewTraceID().String()
	rec.Record(SpanData{TraceID: tid, SpanID: NewSpanID().String(), Name: "a"})
	rec.Record(SpanData{TraceID: NewTraceID().String(), SpanID: NewSpanID().String(), Name: "b"})
	srv := httptest.NewServer(Handler(rec))
	defer srv.Close()

	fetch := func(url string) []SpanData {
		t.Helper()
		resp, err := srv.Client().Get(url)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
			t.Fatalf("content type %q", ct)
		}
		var spans []SpanData
		if err := json.NewDecoder(resp.Body).Decode(&spans); err != nil {
			t.Fatal(err)
		}
		return spans
	}

	if got := fetch(srv.URL); len(got) != 2 {
		t.Fatalf("all spans: %d", len(got))
	}
	got := fetch(srv.URL + "?trace=" + tid)
	if len(got) != 1 || got[0].Name != "a" {
		t.Fatalf("filtered: %+v", got)
	}
	if got := fetch(srv.URL + "?limit=1"); len(got) != 1 || got[0].Name != "b" {
		t.Fatalf("limited: %+v", got)
	}
	if got := fetch(srv.URL + "?trace=none"); len(got) != 0 {
		t.Fatalf("no-match filter: %+v", got)
	}
	resp, err := srv.Client().Post(srv.URL, "text/plain", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 405 {
		t.Fatalf("POST status %d", resp.StatusCode)
	}
}

func TestDebugMuxServesPprofAndTrace(t *testing.T) {
	srv := httptest.NewServer(DebugMux(NewRecorder(4)))
	defer srv.Close()
	for _, path := range []string{"/debug/pprof/", "/trace"} {
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("GET %s: %d", path, resp.StatusCode)
		}
	}
}
