// Package neesgrid is the public façade of the NEESgrid reproduction: a
// Grid-based framework for distributed hybrid earthquake engineering
// experiments, after Pearlman et al., "Distributed Hybrid Earthquake
// Engineering Experiments: Experiences with a Ground-Shaking Grid
// Application" (HPDC-13, 2004).
//
// The framework couples physical test rigs (emulated here — see DESIGN.md)
// and numerical simulations through NTCP, a transaction-based teleoperation
// control protocol with at-most-once semantics, running over a stateful
// OGSI-style service container secured with GSI-style credential chains.
// Around the control core sit the remote-monitoring services (NSDS
// streaming, telepresence), the data/metadata repository (NMDS + NFMS over
// GridFTP-style transfer), and a CHEF-style collaboration layer.
//
// Quick start (one NTCP transaction against a simulated substructure):
//
//	plugin := &neesgrid.SubstructurePlugin{Point: "drift", NDOF: 1,
//		Apply: func(d []float64) ([]float64, error) {
//			return []float64{2e6 * d[0]}, nil
//		}}
//	server := neesgrid.NewNTCPServer(plugin, nil, neesgrid.NTCPServerOptions{})
//	rec, _ := server.Propose(ctx, "me", &neesgrid.Proposal{
//		Name:    "step-1",
//		Actions: []neesgrid.Action{{ControlPoint: "drift", Displacements: []float64{0.01}}},
//	})
//	rec, _ = server.Execute(ctx, "me", "step-1")
//
// For a complete three-site distributed experiment, see the most package
// façade below and examples/most.
package neesgrid

import (
	"neesgrid/internal/collab"
	"neesgrid/internal/control"
	"neesgrid/internal/coord"
	"neesgrid/internal/core"
	"neesgrid/internal/faultnet"
	"neesgrid/internal/groundmotion"
	"neesgrid/internal/gsi"
	"neesgrid/internal/most"
	"neesgrid/internal/nsds"
	"neesgrid/internal/ogsi"
	"neesgrid/internal/structural"
)

// NTCP protocol surface (internal/core).
type (
	// Action requests a control-point move (NTCP).
	Action = core.Action
	// Result is a measured control-point state (NTCP).
	Result = core.Result
	// Proposal creates an NTCP transaction.
	Proposal = core.Proposal
	// TxRecord is the published transaction state.
	TxRecord = core.Record
	// TxState enumerates the Fig. 1 transaction states.
	TxState = core.TxState
	// Plugin maps NTCP actions onto a local control system.
	Plugin = core.Plugin
	// SubstructurePlugin adapts an impose-displacement/measure-force
	// function into a Plugin.
	SubstructurePlugin = core.SubstructurePlugin
	// SitePolicy screens proposals against site limits.
	SitePolicy = core.SitePolicy
	// Limits bounds one control point.
	Limits = core.Limits
	// NTCPServer is the core transaction server.
	NTCPServer = core.Server
	// NTCPServerOptions tunes a server.
	NTCPServerOptions = core.ServerOptions
	// NTCPClient drives a remote server with retry.
	NTCPClient = core.Client
	// RetryPolicy configures client fault tolerance.
	RetryPolicy = core.RetryPolicy
)

// NewNTCPServer builds an NTCP server over a plugin and site policy.
func NewNTCPServer(p Plugin, policy *SitePolicy, opts NTCPServerOptions) *NTCPServer {
	return core.NewServer(p, policy, opts)
}

// NewNTCPClient wraps an OGSI client as an NTCP client.
func NewNTCPClient(og *OGSIClient, retry RetryPolicy) *NTCPClient {
	return core.NewClient(og, retry)
}

// Retry profiles.
var (
	// DefaultRetry is the fault-tolerant coordinator profile.
	DefaultRetry = core.DefaultRetry
	// NoRetry reproduces the public MOST run's coordinator.
	NoRetry = core.NoRetry
)

// Grid substrate (internal/ogsi, internal/gsi).
type (
	// Container hosts OGSI services behind a secured endpoint.
	Container = ogsi.Container
	// OGSIService is one stateful grid service.
	OGSIService = ogsi.Service
	// OGSIClient calls remote services.
	OGSIClient = ogsi.Client
	// Authority is a certificate authority.
	Authority = gsi.Authority
	// Credential is a key plus its certificate chain.
	Credential = gsi.Credential
	// TrustStore validates credential chains.
	TrustStore = gsi.TrustStore
	// Gridmap authorizes identities onto local accounts.
	Gridmap = gsi.Gridmap
)

// NewAuthority creates a CA for a virtual organization.
var NewAuthority = gsi.NewAuthority

// NewTrustStore builds a trust store over CA certificates.
var NewTrustStore = gsi.NewTrustStore

// NewGridmap builds a gridmap from identity → account pairs.
var NewGridmap = gsi.NewGridmap

// NewContainer hosts services with the given credential, trust, and map.
var NewContainer = ogsi.NewContainer

// NewOGSIClient builds a client for a container endpoint.
var NewOGSIClient = ogsi.NewClient

// Structural dynamics (internal/structural, internal/groundmotion).
type (
	// Substructure is the impose-displacement/measure-force contract.
	Substructure = structural.Substructure
	// FrameConfig parameterizes a MOST-style test frame.
	FrameConfig = structural.FrameConfig
	// History is a recorded run response.
	History = structural.History
	// GroundMotion is an acceleration record.
	GroundMotion = groundmotion.Record
)

// MOSTConfig returns the reference MOST frame parameters.
var MOSTConfig = structural.MOSTConfig

// MiniMOSTConfig returns the tabletop Mini-MOST parameters.
var MiniMOSTConfig = structural.MiniMOSTConfig

// ElCentroLike returns the reference synthetic ground-motion config.
var ElCentroLike = groundmotion.ElCentroLike

// GenerateGroundMotion synthesizes a record.
var GenerateGroundMotion = groundmotion.Generate

// Experiment harness (internal/most, internal/coord).
type (
	// Experiment is a running multi-site topology.
	Experiment = most.Experiment
	// ExperimentSpec describes a distributed hybrid experiment.
	ExperimentSpec = most.Spec
	// ExperimentResults collects a run's outputs.
	ExperimentResults = most.Results
	// ExperimentSite describes one site.
	ExperimentSite = most.SiteSpec
	// Fault schedules a network fault.
	Fault = most.Fault
	// CoordinatorReport summarizes a run.
	CoordinatorReport = coord.Report
	// BackendKind selects a site's realization.
	BackendKind = most.BackendKind
)

// Site back ends.
const (
	KindSimulation   = most.KindSimulation
	KindMpluginSim   = most.KindMpluginSim
	KindShoreWestern = most.KindShoreWestern
	KindXPC          = most.KindXPC
	KindLabView      = most.KindLabView
	KindKinetic      = most.KindKinetic
)

// Experiment variants.
const (
	VariantSimulation = most.VariantSimulation
	VariantHybrid     = most.VariantHybrid
)

// BuildExperiment starts a topology.
var BuildExperiment = most.Build

// MOSTSpec builds the three-site MOST experiment.
var MOSTSpec = most.MOSTSpec

// DryRunSpec is experiment E1 (completes all 1,500 steps).
var DryRunSpec = most.DryRunSpec

// PublicRunSpec is experiment E2 (aborts at step 1493).
var PublicRunSpec = most.PublicRunSpec

// MiniMOSTSpec is experiment E7.
var MiniMOSTSpec = most.MiniMOSTSpec

// SoilStructureSpec is experiment E12.
var SoilStructureSpec = most.SoilStructureSpec

// Monitoring and collaboration (internal/nsds, internal/collab).
type (
	// StreamHub fans samples out to best-effort subscribers.
	StreamHub = nsds.Hub
	// StreamSample is one measurement frame.
	StreamSample = nsds.Sample
	// Workspace is the CHEF-style collaboration state.
	Workspace = collab.Workspace
	// DataViewer records streams and serves Fig. 8-style series.
	DataViewer = collab.Viewer
)

// NewStreamHub returns an empty hub.
var NewStreamHub = nsds.NewHub

// NewWorkspace returns an empty collaboration workspace.
var NewWorkspace = collab.NewWorkspace

// NewDataViewer returns a viewer with the given retention.
var NewDataViewer = collab.NewViewer

// Rig emulation and fault injection (internal/control, internal/faultnet).
type (
	// Rig is a one-DOF physical-substructure emulation.
	Rig = control.Rig
	// ActuatorConfig parameterizes a servo actuator channel.
	ActuatorConfig = control.ActuatorConfig
	// FaultInjector produces scheduled network failures.
	FaultInjector = faultnet.Injector
	// NetworkProfile describes steady-state WAN behaviour.
	NetworkProfile = faultnet.Profile
)

// NewColumnRig builds a MOST-style column rig.
var NewColumnRig = control.NewColumnRig

// DefaultActuator returns a typical actuator configuration.
var DefaultActuator = control.DefaultActuator

// NewFaultInjector builds an injector over a profile.
var NewFaultInjector = faultnet.NewInjector

// WAN2003 approximates the 2003 Illinois–Colorado path.
var WAN2003 = faultnet.WAN2003
